(* The paper's headline scenario (Fig. 1): a multi-class HTTPS server.

   The server's main loop is non-secret-accessing (ARCH); it calls a
   non-constant-time DH key exchange (UNR), a static constant-time record
   cipher (CTS) and a constant-time MAC (CT).  The only prior defense
   that fully secures such a program is SPT-SB, which must treat
   everything as unrestricted.  PROTEAN compiles each function with its
   own class's ProtCC pass and targets the protection accordingly.

     dune exec examples/multiclass_server.exe *)

module W = Protean_workloads
module Pipeline = Protean.Ooo.Pipeline
module Config = Protean.Ooo.Config
module Stats = Protean.Ooo.Stats
module Defense = Protean.Defense
module Program = Protean.Isa.Program

let () =
  let base = W.Nginx_sim.make ~clients:2 ~requests:2 () in
  print_endline "Multi-class web server (nginx.c2r2):";
  List.iter
    (fun (f : Program.func) ->
      Printf.printf "  %-18s class %-4s (%d instructions)\n" f.Program.fname
        (Program.string_of_klass f.Program.klass)
        f.Program.size)
    base.Program.funcs;

  let cycles name policy program =
    let r = Pipeline.run ~fuel:20_000_000 Config.p_core policy program ~overlays:[] in
    Printf.printf "  %-24s %7d cycles\n" name r.Pipeline.stats.Stats.cycles;
    r.Pipeline.stats.Stats.cycles
  in
  print_endline "";
  let unsafe = cycles "unsafe" Protean.Ooo.Policy.unsafe base in
  let sb = cycles "SPT-SB (all-UNR)" (Defense.spt_sb.Defense.make ()) base in

  (* PROTEAN: instrument each function with its own class (the default —
     classes come from the function table, i.e. the user's per-component
     compilation flags of Section V-A). *)
  let compiled, r = Protean.secure ~mechanism:Protean.Track base in
  ignore compiled;
  let protean = r.Pipeline.stats.Stats.cycles in
  Printf.printf "  %-24s %7d cycles\n" "PROTEAN-Track (per-class)" protean;

  let ovh c = (float_of_int c /. float_of_int unsafe -. 1.0) *. 100.0 in
  Printf.printf
    "\n  overhead: SPT-SB %.0f%%, PROTEAN %.0f%% (%.2fx of the baseline's \
     overhead)\n"
    (ovh sb) (ovh protean)
    (ovh protean /. ovh sb);

  (* What would it cost to protect everything as unrestricted under
     PROTEAN too?  This is the price of NOT being programmable. *)
  let all_unr, r_unr =
    Protean.secure ~mechanism:Protean.Track
      ~pass_override:Protean.Protcc.P_unr base
  in
  ignore all_unr;
  Printf.printf "  (PROTEAN forced all-UNR:  %7d cycles — programmability \
                 is what wins)\n"
    r_unr.Pipeline.stats.Stats.cycles
