(* Security fuzzing walkthrough: test the unsafe core and PROTEAN against
   the ARCH-SEQ contract with the AMuLeT*-style fuzzer, then demonstrate
   how the timing-based adversary model catches the pending-squash
   implementation bug that the default cache+TLB adversary misses
   (Section VII-B4b).

     dune exec examples/fuzz_defense.exe *)

module Fuzz = Protean_amulet.Fuzz
module Gen = Protean_amulet.Gen
module Defense = Protean.Defense
module Protcc = Protean.Protcc

let show name (o : Fuzz.outcome) =
  Printf.printf "  %-34s tests=%-3d skipped=%-3d violations=%-3d fp=%d\n" name
    o.Fuzz.tests o.Fuzz.skipped o.Fuzz.violations o.Fuzz.false_positives

let () =
  let base =
    { Fuzz.default_campaign with Fuzz.programs = 12; inputs_per_program = 4 }
  in
  print_endline "ARCH-SEQ contract, unmodified binaries, cache+TLB adversary:";
  show "unsafe" (Fuzz.run base Defense.unsafe);
  show "PROTEAN (ProtTrack)" (Fuzz.run base Defense.prot_track);
  show "PROTEAN (ProtDelay)" (Fuzz.run base Defense.prot_delay);

  print_endline "\nCT-SEQ contract, ProtCC-CT binaries:";
  let ct =
    {
      base with
      Fuzz.mode_of = Fuzz.ct_seq;
      gen_klass = Gen.G_ct;
      instrumentation = Fuzz.I_pass Protcc.P_ct;
    }
  in
  show "unsafe" (Fuzz.run ct Defense.unsafe);
  show "PROTEAN (ProtTrack)" (Fuzz.run ct Defense.prot_track);

  print_endline
    "\nThe pending-squash bug (inherited from STT's gem5 implementation):";
  let timing = { ct with Fuzz.adversary = Fuzz.Timing } in
  show "buggy, cache+TLB adversary"
    (Fuzz.run { ct with Fuzz.squash_bug = true } Defense.prot_track);
  show "buggy, timing adversary"
    (Fuzz.run { timing with Fuzz.squash_bug = true } Defense.prot_track);
  show "fixed, timing adversary" (Fuzz.run timing Defense.prot_track);
  print_endline
    "\nOnly the fine-grained timing adversary (visible to SMT receivers)\n\
     surfaces the secret-dependent squash delay; the fix restores a clean\n\
     bill of health."
