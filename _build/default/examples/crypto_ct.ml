(* Securing constant-time cryptography: ChaCha20 under the prior
   state-of-the-art (SPT) versus PROTEAN with the ProtCC-CTS pass.

   The kernel is static constant-time: the secret key flows only through
   arithmetic, never into addresses or branch conditions.  ProtCC-CTS
   infers a secrecy typing, PROT-prefixes the secret-typed definitions,
   and unprotects the public loop counters — so PROTEAN stalls almost
   nothing.  SPT must discover public data dynamically (only after it has
   been architecturally transmitted by a retired transmitter) and pays on
   every fresh value.

     dune exec examples/crypto_ct.exe *)

module W = Protean_workloads
module Pipeline = Protean.Ooo.Pipeline
module Config = Protean.Ooo.Config
module Stats = Protean.Ooo.Stats
module Defense = Protean.Defense
module Memory = Protean.Arch.Memory

let run name policy program =
  let r =
    Pipeline.run ~fuel:20_000_000 Config.p_core policy program ~overlays:[]
  in
  Printf.printf "  %-22s %6d cycles  (%d transmitter-stall events)\n" name
    r.Pipeline.stats.Stats.cycles
    r.Pipeline.stats.Stats.transmitter_stall_cycles;
  (r.Pipeline.stats.Stats.cycles, r)

let () =
  let base = W.Chacha20.make ~blocks:2 () in
  print_endline "ChaCha20 keystream (2 blocks), P-core:";
  let unsafe_cycles, unsafe_r = run "unsafe" Protean.Ooo.Policy.unsafe base in
  let spt_cycles, _ = run "SPT" (Defense.spt.Defense.make ()) base in

  (* PROTEAN runs the ProtCC-CTS binary. *)
  let compiled, r =
    Protean.secure ~mechanism:Protean.Track
      ~pass_override:Protean.Protcc.P_cts base
  in
  Printf.printf "  %-22s %6d cycles  (%d PROT prefixes, %d identity moves)\n"
    "PROTEAN-Track-CTS" r.Pipeline.stats.Stats.cycles
    (Array.fold_left
       (fun n (i : Protean.Isa.Insn.t) -> if i.Protean.Isa.Insn.prot then n + 1 else n)
       0 compiled.Protean.Protcc.program.Protean.Isa.Program.code)
    compiled.Protean.Protcc.inserted_moves;

  Printf.printf "\n  normalized: SPT %.3fx, PROTEAN %.3fx\n"
    (float_of_int spt_cycles /. float_of_int unsafe_cycles)
    (float_of_int r.Pipeline.stats.Stats.cycles /. float_of_int unsafe_cycles);

  (* Functional check: the instrumented run still computes RFC 8439
     keystream bytes. *)
  let expected = W.Chacha20.ref_output 2 in
  let got = Memory.read_string r.Pipeline.mem 0x3000L (String.length expected) in
  Printf.printf "  keystream correct on PROTEAN hardware: %b\n"
    (String.equal got expected);
  let got_unsafe =
    Memory.read_string unsafe_r.Pipeline.mem 0x3000L (String.length expected)
  in
  Printf.printf "  keystream correct on unsafe hardware:  %b\n"
    (String.equal got_unsafe expected)
