examples/crypto_ct.mli:
