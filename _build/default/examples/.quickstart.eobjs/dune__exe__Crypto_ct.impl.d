examples/crypto_ct.ml: Array Printf Protean Protean_workloads String
