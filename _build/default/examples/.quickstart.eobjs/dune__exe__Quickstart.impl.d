examples/quickstart.ml: Asm Int64 List Printf Program Protean Protean_isa Reg String
