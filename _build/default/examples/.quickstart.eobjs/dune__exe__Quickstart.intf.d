examples/quickstart.mli:
