examples/fuzz_defense.ml: Printf Protean Protean_amulet
