examples/multiclass_server.ml: List Printf Protean Protean_workloads
