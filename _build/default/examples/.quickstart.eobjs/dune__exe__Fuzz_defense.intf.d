examples/fuzz_defense.mli:
