examples/multiclass_server.mli:
