(* Quickstart: write a program with a Spectre gadget against the Protean
   ISA, watch it leak on the unsafe core, then compile it with ProtCC and
   run it on PROTEAN hardware where the leak is gone.

     dune exec examples/quickstart.exe *)

open Protean_isa
module Pipeline = Protean.Ooo.Pipeline
module Hw_trace = Protean.Ooo.Hw_trace
module Config = Protean.Ooo.Config

(* A bounds-check-bypass victim: the secret is never architecturally
   accessed (the guard always skips the body), but a mispredicted branch
   lets the body run transiently — loading the secret and using it as a
   probe-array index, a classic cache side channel. *)
let victim () =
  let c = Asm.create () in
  Asm.data c ~addr:0x6000L ~secret:true "\042\000\000\000\000\000\000\000";
  Asm.bss c ~addr:0xA000L 4096 (* probe array *);
  Asm.bss c ~addr:0xE000L 64 (* cold guard variable *);
  Asm.func c ~klass:Program.Arch "victim";
  (* Slow guard: the bound is cold in memory, so the branch resolves
     long after the frontend has speculated past it. *)
  Asm.mov c Reg.rbx (Asm.i 0xE000);
  Asm.load c Reg.rbx (Asm.mb Reg.rbx);
  Asm.or_ c Reg.rbx (Asm.i 1);
  Asm.test c Reg.rbx (Asm.r Reg.rbx);
  Asm.jnz c "in_bounds" (* architecturally always taken *);
  (* Transient-only body: load the secret, leak it via the cache. *)
  Asm.mov c Reg.rdi (Asm.i 0x6000);
  Asm.load c Reg.rax (Asm.mb Reg.rdi);
  Asm.and_ c Reg.rax (Asm.i 63);
  Asm.shl c Reg.rax (Asm.i 6);
  Asm.add c Reg.rax (Asm.i 0xA000);
  Asm.load c Reg.rax (Asm.mb Reg.rax) (* probe access reveals the secret *);
  Asm.label c "in_bounds";
  Asm.mov c Reg.rax (Asm.i 0);
  Asm.halt c;
  Asm.finish c

(* Which probe-array cache sets did the run touch?  A real attacker
   recovers the secret from exactly this: prime+probe over 0xA000. *)
let probe_sets trace =
  List.filter_map
    (function
      | Hw_trace.E_cache_fill { level = 1; set; tag } ->
          let addr = Int64.shift_left tag 6 in
          if Int64.compare addr 0xA000L >= 0 && Int64.compare addr 0xB000L < 0
          then Some set
          else None
      | _ -> None)
    (Hw_trace.all trace)

let show name (r : Pipeline.result) =
  let sets = probe_sets r.Pipeline.trace in
  Printf.printf "%-28s cycles=%-6d probe-array cache sets touched: %s\n" name
    r.Pipeline.stats.Protean.Ooo.Stats.cycles
    (if sets = [] then "none (no leak)"
     else String.concat ", " (List.map string_of_int sets) ^ "  <-- SECRET LEAKED")

let () =
  let program = victim () in
  print_endline "== Spectre bounds-check bypass on the unsafe core ==";
  let unsafe =
    Protean.run_unsafe ~config:Config.test_core ~trace:true program
  in
  show "unsafe" unsafe;

  print_endline "\n== The same program on PROTEAN hardware ==";
  (* ProtCC-ARCH is a no-op: unmodified ARCH binaries are already
     correctly programmed — all memory protected until accessed. *)
  List.iter
    (fun mechanism ->
      let compiled, r =
        Protean.secure ~mechanism ~config:Config.test_core ~trace:true program
      in
      ignore compiled;
      show
        (match mechanism with
        | Protean.Delay -> "PROTEAN (ProtDelay)"
        | Protean.Track -> "PROTEAN (ProtTrack)")
        r)
    [ Protean.Delay; Protean.Track ];

  print_endline "\nThe transient probe access never happens under PROTEAN:";
  print_endline "the secret load reads protected memory, so its dependents";
  print_endline "are delayed (ProtDelay) or tainted (ProtTrack) until the";
  print_endline "squash arrives."
