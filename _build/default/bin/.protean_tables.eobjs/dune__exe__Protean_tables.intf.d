bin/protean_tables.mli:
