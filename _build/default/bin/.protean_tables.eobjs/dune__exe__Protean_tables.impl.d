bin/protean_tables.ml: Arg Cmd Cmdliner List Protean_harness Term
