(* protean-tables: regenerate the paper's results tables and figures
   (the artifact's table-*.py / figure-*.py scripts, Section A-G).

     protean-tables table-v
     protean-tables table-iv --bench perlbench --bench milc
     protean-tables all *)

open Cmdliner
module E = Protean_harness.Experiment
module Tables = Protean_harness.Tables
module Figures = Protean_harness.Figures
module Studies = Protean_harness.Studies

let what_arg =
  let doc =
    "What to generate: table-i, table-ii, table-iv, table-v, figure-5, \
     figure-6, protcc-overhead, l1d-variants, ablation-access, \
     control-model, bugfix-cost, area, or all."
  in
  Arg.(value & pos 0 string "table-v" & info [] ~docv:"WHAT" ~doc)

let bench_arg =
  let doc = "Restrict to these benchmarks (repeatable)." in
  Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let fuzz_programs_arg =
  Arg.(value & opt int 10 & info [ "fuzz-programs" ] ~docv:"N"
         ~doc:"Programs per Table II campaign.")

let run what benches fuzz_programs =
  let benches = match benches with [] -> None | bs -> Some bs in
  let session = E.create_session ~log:true () in
  let gen = function
    | "table-i" -> Tables.table_i ?benches session
    | "table-ii" -> Tables.table_ii ~programs:fuzz_programs ()
    | "table-iv" -> Tables.table_iv ?benches session
    | "table-v" -> Tables.table_v ?benches session
    | "figure-5" -> Figures.figure_5 ?benches session
    | "figure-6" -> Figures.figure_6 ?benches session
    | "protcc-overhead" -> Studies.protcc_overhead ?benches session
    | "l1d-variants" -> Studies.l1d_variants ?benches session
    | "ablation-access" -> Studies.ablation_access ?benches session
    | "control-model" -> Studies.control_model ?benches session
    | "bugfix-cost" -> Studies.bugfix_cost ?benches session
    | "area" -> Studies.area_report ()
    | s -> invalid_arg ("unknown table/figure: " ^ s)
  in
  match what with
  | "all" ->
      List.iter gen
        [
          "table-v"; "table-iv"; "table-i"; "figure-6"; "figure-5";
          "protcc-overhead"; "l1d-variants"; "ablation-access";
          "control-model"; "bugfix-cost"; "area"; "table-ii";
        ]
  | w -> gen w

let cmd =
  let doc = "regenerate the PROTEAN paper's tables and figures" in
  Cmd.v
    (Cmd.info "protean-tables" ~doc)
    Term.(const run $ what_arg $ bench_arg $ fuzz_programs_arg)

let () = exit (Cmd.eval cmd)
