bin/protean_sim.ml: Arg Array Cmd Cmdliner Format List Printf Protean_defense Protean_isa Protean_ooo Protean_protcc Protean_workloads Term
