bin/protean_sim.mli:
