bin/protean_fuzz.ml: Arg Cmd Cmdliner Printf Protean_amulet Protean_defense Protean_harness Protean_protcc String Term
