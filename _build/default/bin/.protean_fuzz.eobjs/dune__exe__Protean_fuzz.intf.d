bin/protean_fuzz.mli:
