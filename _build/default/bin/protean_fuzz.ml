(* protean-fuzz: AMuLeT*-style security fuzzing of the simulated
   hardware configurations against security contracts (Section VII-B).

     protean-fuzz --defense prot-track --contract ct --programs 50
     protean-fuzz --table-ii            # the scaled-down Table II grid *)

open Cmdliner
module Fuzz = Protean_amulet.Fuzz
module Gen = Protean_amulet.Gen
module Defense = Protean_defense.Defense
module Protcc = Protean_protcc.Protcc
module Tables = Protean_harness.Tables

let defense_arg =
  Arg.(value & opt string "prot-track" & info [ "defense"; "d" ] ~docv:"ID"
         ~doc:"Defense to test.")

let contract_arg =
  Arg.(value & opt string "ct" & info [ "contract"; "c" ] ~docv:"CONTRACT"
         ~doc:"Contract: arch, cts, ct, unprot.")

let programs_arg =
  Arg.(value & opt int 20 & info [ "programs"; "n" ] ~docv:"N"
         ~doc:"Number of random programs.")

let inputs_arg =
  Arg.(value & opt int 5 & info [ "inputs"; "i" ] ~docv:"K"
         ~doc:"Input pairs per program.")

let adversary_arg =
  Arg.(value & opt string "cache" & info [ "adversary"; "a" ] ~docv:"ADV"
         ~doc:"Adversary model: cache (cache+TLB tags) or timing.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let squash_bug_arg =
  Arg.(value & flag & info [ "squash-bug" ]
         ~doc:"Re-enable the pending-squash corner case (Section VII-B4b).")

let table_ii_arg =
  Arg.(value & flag & info [ "table-ii" ]
         ~doc:"Run the scaled-down Table II campaign grid and exit.")

let campaign_of contract adversary programs inputs seed squash_bug =
  let mode_of, gen_klass, instrumentation =
    match contract with
    | "arch" -> (Fuzz.arch_seq, Gen.G_arch, Fuzz.I_none)
    | "cts" -> (Fuzz.cts_seq, Gen.G_ct, Fuzz.I_pass Protcc.P_cts)
    | "ct" -> (Fuzz.ct_seq, Gen.G_ct, Fuzz.I_pass Protcc.P_ct)
    | "unprot" -> (Fuzz.unprot_seq, Gen.G_ct, Fuzz.I_pass (Protcc.P_rand (seed, 0.5)))
    | s -> invalid_arg ("unknown contract: " ^ s)
  in
  let adversary =
    match adversary with
    | "cache" -> Fuzz.Cache_tlb
    | "timing" -> Fuzz.Timing
    | s -> invalid_arg ("unknown adversary: " ^ s)
  in
  {
    Fuzz.default_campaign with
    Fuzz.seed;
    programs;
    inputs_per_program = inputs;
    mode_of;
    gen_klass;
    instrumentation;
    adversary;
    squash_bug;
  }

let run table_ii defense contract programs inputs adversary seed squash_bug =
  if table_ii then Tables.table_ii ~programs ~inputs ()
  else begin
    let d = Defense.find defense in
    let campaign = campaign_of contract adversary programs inputs seed squash_bug in
    let out = Fuzz.run campaign d in
    Printf.printf
      "%s vs %s-SEQ (%s adversary): %d tests, %d skipped, %d violations, %d \
       false positives\n"
      d.Defense.id (String.uppercase_ascii contract)
      (Fuzz.adversary_name campaign.Fuzz.adversary)
      out.Fuzz.tests out.Fuzz.skipped out.Fuzz.violations
      out.Fuzz.false_positives;
    (match out.Fuzz.example with
    | Some (pseed, k) ->
        Printf.printf "first violation: program seed %d, input pair %d\n" pseed k
    | None -> ());
    if out.Fuzz.violations > 0 then exit 1
  end

let cmd =
  let doc = "fuzz simulated Spectre defenses against security contracts" in
  Cmd.v
    (Cmd.info "protean-fuzz" ~doc)
    Term.(
      const run $ table_ii_arg $ defense_arg $ contract_arg $ programs_arg
      $ inputs_arg $ adversary_arg $ seed_arg $ squash_bug_arg)

let () = exit (Cmd.eval cmd)
