lib/amulet/gen.mli: Protean_isa Random
