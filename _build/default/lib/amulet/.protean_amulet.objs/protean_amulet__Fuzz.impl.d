lib/amulet/fuzz.ml: Config Contract Gen Hashtbl Hw_trace List Observer Pipeline Policy Protean_arch Protean_defense Protean_ooo Protean_protcc Random
