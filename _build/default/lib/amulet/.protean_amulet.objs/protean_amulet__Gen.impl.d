lib/amulet/gen.ml: Asm Char Insn Int64 List Printf Program Protean_isa Random Reg String
