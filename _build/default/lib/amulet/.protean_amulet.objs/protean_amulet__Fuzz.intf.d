lib/amulet/fuzz.mli: Config Gen Observer Policy Protean_arch Protean_defense Protean_ooo Protean_protcc
