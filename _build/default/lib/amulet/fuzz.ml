(* The AMuLeT* fuzzing loop (Section VII-B): relational testing of
   microarchitectures against hardware-software security contracts.

   For each random program and input pair:
   1. run the SEQ contract executor under the configured observer mode on
      both inputs; skip the pair unless the contract traces are equal
      (the inputs are then contract-equivalent);
   2. run the hardware configuration under test on both inputs, recording
      attacker-visible events;
   3. compare the adversary's views: a difference on contract-equivalent
      inputs is a contract violation;
   4. classify as a false positive if the committed instruction streams of
      the two hardware executions differ (sequential, not transient,
      divergence — AMuLeT*'s automated post-processing filter). *)

open Protean_arch
open Protean_ooo

type adversary = Cache_tlb | Timing

let adversary_name = function Cache_tlb -> "cache+tlb" | Timing -> "timing"

type instrumentation =
  | I_none (* unmodified binary *)
  | I_pass of Protean_protcc.Protcc.pass

type campaign = {
  seed : int;
  programs : int;
  inputs_per_program : int;
  gen_klass : Gen.klass_gen;
  mode_of : Observer.typing -> Observer.mode;
      (* the contract's observer mode (may consume the CTS typing) *)
  instrumentation : instrumentation;
  adversary : adversary;
  config : Config.t;
  squash_bug : bool;
  spec_model : Policy.spec_model;
}

let default_campaign =
  {
    seed = 1;
    programs = 20;
    inputs_per_program = 6;
    gen_klass = Gen.G_arch;
    mode_of = (fun _ -> Observer.Arch_mode);
    instrumentation = I_none;
    adversary = Cache_tlb;
    config = Config.test_core;
    squash_bug = false;
    spec_model = Policy.Atcommit;
  }

type outcome = {
  mutable tests : int; (* contract-equivalent pairs actually compared *)
  mutable skipped : int; (* pairs filtered by contract-equivalence *)
  mutable violations : int;
  mutable false_positives : int;
  mutable example : (int * int) option; (* (program seed, input index) *)
}

let fresh_outcome () =
  { tests = 0; skipped = 0; violations = 0; false_positives = 0; example = None }

(* Committed-PC projection of a hardware trace: equal streams mean any
   adversary-view divergence is transient leakage (true positive). *)
let committed_stream trace =
  List.filter_map
    (function
      | Hw_trace.E_timing { pc; _ } -> Some pc
      | _ -> None)
    (Hw_trace.all trace)

let adversary_view adversary trace =
  match adversary with
  | Cache_tlb -> Hw_trace.cache_tlb_view trace
  | Timing -> Hw_trace.timing_view trace

let run_hw campaign (defense : Protean_defense.Defense.t) program overlays =
  Pipeline.run ~trace:true ~squash_bug:campaign.squash_bug
    ~spec_model:campaign.spec_model ~fuel:400_000 campaign.config
    (defense.Protean_defense.Defense.make ())
    program ~overlays

(* Test one (program, input-pair); updates [out]. *)
let test_pair campaign defense program mode ~public ~secret_a ~secret_b out
    ~tag =
  let overlays_a = [ public; secret_a ] in
  let overlays_b = [ public; secret_b ] in
  let ca = Contract.run ~fuel:50_000 mode program ~overlays:overlays_a in
  let cb = Contract.run ~fuel:50_000 mode program ~overlays:overlays_b in
  if ca.Contract.exhausted || cb.Contract.exhausted then out.skipped <- out.skipped + 1
  else if not (Contract.traces_equal ca.Contract.trace cb.Contract.trace) then
    out.skipped <- out.skipped + 1
  else begin
    let ha = run_hw campaign defense program overlays_a in
    let hb = run_hw campaign defense program overlays_b in
    out.tests <- out.tests + 1;
    let va = adversary_view campaign.adversary ha.Pipeline.trace in
    let vb = adversary_view campaign.adversary hb.Pipeline.trace in
    if not (Hw_trace.view_equal va vb) then begin
      let fp =
        committed_stream ha.Pipeline.trace <> committed_stream hb.Pipeline.trace
      in
      if fp then out.false_positives <- out.false_positives + 1
      else begin
        out.violations <- out.violations + 1;
        if out.example = None then out.example <- Some tag
      end
    end
  end

(* Instrument a generated program per the campaign, returning the program
   to run and the CTS typing table for the observer. *)
let prepare campaign program =
  match campaign.instrumentation with
  | I_none -> (program, Hashtbl.create 0)
  | I_pass pass ->
      let r = Protean_protcc.Protcc.instrument ~pass_override:pass program in
      (r.Protean_protcc.Protcc.program, r.Protean_protcc.Protcc.typing)

let run campaign (defense : Protean_defense.Defense.t) =
  let out = fresh_outcome () in
  for p = 0 to campaign.programs - 1 do
    let pseed = campaign.seed + (p * 7919) in
    let program =
      Gen.generate { Gen.default_spec with Gen.seed = pseed; klass = campaign.gen_klass }
    in
    let program, typing = prepare campaign program in
    let mode = campaign.mode_of typing in
    let rng = Random.State.make [| pseed; 0xfeed |] in
    let public = Gen.random_public rng in
    let base_secret = Gen.random_secret rng in
    for k = 1 to campaign.inputs_per_program do
      let other = Gen.random_secret rng in
      test_pair campaign defense program mode ~public ~secret_a:base_secret
        ~secret_b:other out ~tag:(pseed, k)
    done
  done;
  out

(* --- contract shorthands -------------------------------------------- *)

let arch_seq = (fun _ -> Observer.Arch_mode)
let ct_seq = (fun _ -> Observer.Ct_mode)
let cts_seq = (fun typing -> Observer.Cts_mode typing)
let unprot_seq = (fun _ -> Observer.Unprot_mode)
