(** The AMuLeT* fuzzing loop (Section VII-B): relational testing of
    microarchitectures against hardware-software security contracts.

    For each random program and input pair: run the SEQ contract executor
    on both inputs and skip the pair unless the traces are equal; run the
    hardware configuration on both inputs recording attacker-visible
    events; report a violation when the adversary's views differ;
    classify it as a false positive when the committed instruction
    streams differ (sequential, not transient, divergence — the automated
    post-processing filter of Section VII-B1e). *)

open Protean_arch
open Protean_ooo

type adversary =
  | Cache_tlb  (** AMuLeT's default: data-cache and TLB tag changes *)
  | Timing
      (** AMuLeT*'s addition: per-stage cycles of committed instructions,
          squash timing and divider activity — what an SMT receiver sees *)

val adversary_name : adversary -> string

type instrumentation = I_none | I_pass of Protean_protcc.Protcc.pass

type campaign = {
  seed : int;
  programs : int;
  inputs_per_program : int;
  gen_klass : Gen.klass_gen;
  mode_of : Observer.typing -> Observer.mode;
      (** contract observer mode (may consume the ProtCC-CTS typing) *)
  instrumentation : instrumentation;
  adversary : adversary;
  config : Config.t;
  squash_bug : bool;
  spec_model : Policy.spec_model;
}

val default_campaign : campaign

type outcome = {
  mutable tests : int;  (** contract-equivalent pairs compared *)
  mutable skipped : int;  (** pairs filtered by contract-equivalence *)
  mutable violations : int;
  mutable false_positives : int;
  mutable example : (int * int) option;
      (** (program seed, input index) of the first violation *)
}

val run : campaign -> Protean_defense.Defense.t -> outcome

(** Contract shorthands (observer-mode constructors). *)

val arch_seq : Observer.typing -> Observer.mode
val ct_seq : Observer.typing -> Observer.mode
val cts_seq : Observer.typing -> Observer.mode
val unprot_seq : Observer.typing -> Observer.mode
