(** Registry of the evaluated Spectre defenses (Section VIII-A5).

    Each defense is a fresh-state policy constructor: policies carry
    mutable per-run state (taint scratch, access predictors, SPT's
    transmitted-state shadow), so a new instance must be made for every
    simulation. *)

type t = {
  id : string;
  description : string;
  make : unit -> Protean_ooo.Policy.t;
}

val unsafe : t
(** The unmodified out-of-order core. *)

val nda : t
(** AccessDelay (NDA / SpecShield): loads don't wake dependents until
    non-speculative. *)

val stt : t
(** AccessTrack (STT): taint load outputs; delay tainted transmitters. *)

val spt : t
(** Speculative Privacy Tracking: only already-transmitted data may be
    transmitted speculatively. *)

val spt_no_w32_fix : t
(** SPT without the 32-bit untaint performance fix (Section VII-B4c). *)

val spt_sb : t
(** SPT's secure baseline (XmitDelay): every transmitter waits until it
    is non-speculative — the only prior defense securing UNR code. *)

val prot_delay : t
(** PROTEAN's ProtDelay (Section VI-B1). *)

val prot_delay_unselective : t
(** AccessDelay applied directly to ProtISA (the Section IX-A4 ablation). *)

val prot_track : t
(** PROTEAN's ProtTrack with its 1024-entry access predictor (VI-B2). *)

val prot_track_nopred : t
(** AccessTrack applied directly to ProtISA (the Section IX-A4 ablation). *)

val prot_track_entries : int -> t
(** ProtTrack with an [n]-entry access predictor ([0] = infinite), for
    the Fig. 5 sensitivity study. *)

val all : t list
val find : string -> t
