(* Registry of the evaluated Spectre defenses (Section VIII-A5).

   Each defense is a fresh-state policy constructor: policies carry
   mutable per-run state (taint scratch, predictors, SPT's transmitted
   shadow), so a new instance must be made for every simulation. *)

open Protean_ooo

type t = {
  id : string;
  description : string;
  make : unit -> Policy.t;
}

let unsafe =
  { id = "unsafe"; description = "unmodified O3 core"; make = (fun () -> Policy.unsafe) }

let nda =
  {
    id = "nda";
    description = "AccessDelay (NDA / SpecShield)";
    make = Access_delay.make;
  }

let stt =
  { id = "stt"; description = "AccessTrack (STT)"; make = Access_track.make }

let spt =
  {
    id = "spt";
    description = "Speculative Privacy Tracking";
    make = (fun () -> Spt.make ());
  }

let spt_no_w32_fix =
  {
    id = "spt-no-w32-fix";
    description = "SPT without the 32-bit untaint performance fix";
    make = (fun () -> Spt.make ~w32_fix:false ());
  }

let spt_sb =
  { id = "spt-sb"; description = "SPT secure baseline (XmitDelay)"; make = Spt_sb.make }

let prot_delay =
  {
    id = "prot-delay";
    description = "PROTEAN ProtDelay";
    make = (fun () -> Prot_delay.make ());
  }

let prot_delay_unselective =
  {
    id = "prot-delay-unselective";
    description = "AccessDelay applied directly to ProtISA (ablation)";
    make = (fun () -> Prot_delay.make ~selective_wakeup:false ());
  }

let prot_track =
  {
    id = "prot-track";
    description = "PROTEAN ProtTrack (1024-entry access predictor)";
    make = (fun () -> Prot_track.make ());
  }

let prot_track_nopred =
  {
    id = "prot-track-nopred";
    description = "AccessTrack applied directly to ProtISA (ablation)";
    make = (fun () -> Prot_track.make ~predictor:false ());
  }

let prot_track_entries n =
  {
    id = Printf.sprintf "prot-track-%d" n;
    description =
      (if n = 0 then "ProtTrack with an infinite access predictor"
       else Printf.sprintf "ProtTrack with a %d-entry access predictor" n);
    make = (fun () -> Prot_track.make ~predictor_entries:n ());
  }

let all =
  [
    unsafe;
    nda;
    stt;
    spt;
    spt_no_w32_fix;
    spt_sb;
    prot_delay;
    prot_delay_unselective;
    prot_track;
    prot_track_nopred;
  ]

let find id =
  match List.find_opt (fun d -> String.equal d.id id) all with
  | Some d -> d
  | None -> invalid_arg ("Defense.find: unknown defense " ^ id)
