(* AccessTrack — the protection mechanism of STT (Section VI-A2).

   Hardware-defined ProtSet: all of memory, no registers; targets
   non-secret-accessing (ARCH) code.  Loads are the access instructions:
   their outputs (and transitively their dependents) are tainted at
   rename; transmitters with a tainted sensitive operand may not
   execute/resolve until the youngest access they depend on becomes
   non-speculative.  Untainting is implicit when that root retires.

   Because STT identifies access instructions at rename, it must taint the
   output of *every* load — the conservatism ProtTrack's access predictor
   removes (Section VI-A2). *)

open Protean_ooo

let make () =
  let on_rename api (e : Rob_entry.t) =
    let inherited = Policy.inherited_taint api e in
    let self = if Rob_entry.is_load e then e.Rob_entry.seq else -1 in
    e.Rob_entry.access_at_rename <- Rob_entry.is_load e;
    e.Rob_entry.taint_root <- max inherited self
  in
  let may_execute_transmitter api e = not (Taint.sensitive_tainted api e) in
  let may_resolve api (e : Rob_entry.t) =
    (not (Taint.sensitive_tainted api e))
    && ((not (Taint.resolves_from_memory e)) || not (Taint.own_load_tainted api e))
  in
  {
    Policy.unsafe with
    Policy.name = "access-track";
    on_rename;
    may_execute_transmitter;
    may_resolve;
  }
