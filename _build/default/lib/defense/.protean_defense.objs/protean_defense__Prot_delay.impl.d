lib/defense/prot_delay.ml: Policy Protean_ooo Rob_entry Taint
