lib/defense/spt.ml: Array Insn List Policy Protean_arch Protean_isa Protean_ooo Protset Reg Rob_entry Taint
