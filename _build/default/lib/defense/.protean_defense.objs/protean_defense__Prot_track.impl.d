lib/defense/prot_track.ml: Bytes Hashtbl Policy Protean_ooo Rob_entry Stats Taint
