lib/defense/defense.mli: Protean_ooo
