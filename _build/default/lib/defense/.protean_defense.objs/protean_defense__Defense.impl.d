lib/defense/defense.ml: Access_delay Access_track List Policy Printf Prot_delay Prot_track Protean_ooo Spt Spt_sb String
