lib/defense/access_track.ml: Policy Protean_ooo Rob_entry Taint
