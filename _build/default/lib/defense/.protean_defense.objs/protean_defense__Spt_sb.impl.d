lib/defense/spt_sb.ml: Policy Protean_ooo
