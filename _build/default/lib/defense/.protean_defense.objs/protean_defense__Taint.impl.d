lib/defense/taint.ml: Array Insn Policy Protean_isa Protean_ooo Rob_entry
