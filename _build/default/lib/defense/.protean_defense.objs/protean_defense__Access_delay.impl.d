lib/defense/access_delay.ml: Policy Protean_ooo Rob_entry
