(* SPT-SB — SPT's secure baseline (Section III-C).

   Hardware-defined ProtSet: *all* architectural state; targets
   unrestricted code and is the only prior defense that fully secures it.
   Protection mechanism: XmitDelay — every transmitter is delayed (its
   execution for memory accesses and divisions, its resolution for
   branches) until it becomes non-speculative.  No taint tracking is
   needed, but nothing speculative ever transmits, which is why SPT-SB's
   overheads are the highest of the baselines. *)

open Protean_ooo

let make () =
  {
    Policy.unsafe with
    Policy.name = "spt-sb";
    may_execute_transmitter =
      (fun api e -> not (Policy.is_speculative api e));
    may_resolve = (fun api e -> not (Policy.is_speculative api e));
  }
