(* AccessDelay — the protection mechanism of NDA and SpecShield
   (Section VI-A1).

   Hardware-defined ProtSet: all of memory, no registers; targets
   non-secret-accessing (ARCH) code.  Access instructions are loads.  They
   may execute and write back speculatively but may not wake up their
   dependents until they become non-speculative, so transiently-accessed
   data never reaches a transmitter. *)

open Protean_ooo

let make () =
  {
    Policy.unsafe with
    Policy.name = "access-delay";
    may_forward =
      (fun api e ->
        if Rob_entry.is_load e then not (Policy.is_speculative api e) else true);
  }
