lib/ooo/branch_pred.mli: Config
