lib/ooo/multicore.ml: Array Cache Config Option Pipeline Policy Protean_isa
