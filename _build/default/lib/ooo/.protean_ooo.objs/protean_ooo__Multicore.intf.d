lib/ooo/multicore.mli: Config Pipeline Policy Protean_isa
