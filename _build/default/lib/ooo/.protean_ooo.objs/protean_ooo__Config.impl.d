lib/ooo/config.ml:
