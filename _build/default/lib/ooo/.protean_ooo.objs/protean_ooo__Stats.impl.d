lib/ooo/stats.ml: Format
