lib/ooo/hw_trace.ml: Format List
