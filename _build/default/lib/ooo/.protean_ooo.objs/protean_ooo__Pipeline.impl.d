lib/ooo/pipeline.ml: Array Branch_pred Bytes Cache Config Hw_trace Insn Int64 List Memory Option Policy Printf Program Protean_arch Protean_isa Protset Queue Reg Rob_entry Sem Stats String Tlb
