lib/ooo/branch_pred.ml: Array Config Tage
