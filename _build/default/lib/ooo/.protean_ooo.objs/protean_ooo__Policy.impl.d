lib/ooo/policy.ml: Array Config Rob_entry Stats
