lib/ooo/hw_trace.mli: Format
