lib/ooo/rob_entry.ml: Array Insn Protean_isa Reg
