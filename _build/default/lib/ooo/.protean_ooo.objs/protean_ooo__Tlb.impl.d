lib/ooo/tlb.ml: Array Int64
