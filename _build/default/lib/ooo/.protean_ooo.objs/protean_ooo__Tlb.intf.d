lib/ooo/tlb.mli:
