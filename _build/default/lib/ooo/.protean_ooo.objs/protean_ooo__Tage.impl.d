lib/ooo/tage.ml: Array
