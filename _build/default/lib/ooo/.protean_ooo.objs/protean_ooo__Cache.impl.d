lib/ooo/cache.ml: Array Bytes Config Int64 Option
