lib/ooo/cache.mli: Config
