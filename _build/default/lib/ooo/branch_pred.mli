(** Branch prediction: a bimodal (2-bit counter) direction predictor —
    optionally backed by the TAGE predictor of Table III
    ({!Config.with_tage}) — a branch target buffer for indirect jumps,
    and a return stack buffer.

    Mispredictions are what open the transient windows Spectre attacks
    exploit, so the predictor is deliberately trainable; counters start
    weakly not-taken so unseen forward branches fall through. *)

type t

val create : Config.bp_cfg -> t

val predict_direction : t -> int -> bool
val update_direction : t -> int -> bool -> unit

val predict_indirect : t -> int -> int option
val update_indirect : t -> int -> int -> unit

val rsb_push : t -> int -> unit
val rsb_pop : t -> int option

val rsb_clear : t -> unit
(** Speculative RSB state is not checkpointed: a squash clears it. *)
