(* Branch prediction: a bimodal (2-bit counter) direction predictor, a
   branch target buffer for indirect jumps, and a return stack buffer.
   Mispredictions are what open the transient windows Spectre attacks
   exploit, so the predictor is deliberately trainable. *)

type t = {
  cfg : Config.bp_cfg;
  counters : int array; (* 2-bit saturating counters *)
  tage : Tage.t option; (* optional TAGE backing (Table III) *)
  btb_tags : int array;
  btb_targets : int array;
  rsb : int array;
  mutable rsb_top : int; (* number of valid entries *)
}

let create (cfg : Config.bp_cfg) =
  {
    cfg;
    counters = Array.make cfg.bimodal_entries 1 (* weakly not-taken *);
    tage = (if cfg.Config.use_tage then Some (Tage.create ()) else None);
    btb_tags = Array.make cfg.btb_entries (-1);
    btb_targets = Array.make cfg.btb_entries 0;
    rsb = Array.make cfg.rsb_depth 0;
    rsb_top = 0;
  }

let bim_index t pc = pc land (t.cfg.bimodal_entries - 1)
let btb_index t pc = pc land (t.cfg.btb_entries - 1)

let predict_direction t pc =
  match t.tage with
  | Some tg ->
      let taken = Tage.predict tg pc in
      Tage.push_history tg taken (* speculative history update at fetch *);
      taken
  | None -> t.counters.(bim_index t pc) >= 2

let update_direction t pc taken =
  (match t.tage with Some tg -> Tage.update tg pc taken | None -> ());
  let i = bim_index t pc in
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1))

let predict_indirect t pc =
  let i = btb_index t pc in
  if t.btb_tags.(i) = pc then Some t.btb_targets.(i) else None

let update_indirect t pc target =
  let i = btb_index t pc in
  t.btb_tags.(i) <- pc;
  t.btb_targets.(i) <- target

let rsb_push t ret_pc =
  if t.rsb_top < t.cfg.rsb_depth then begin
    t.rsb.(t.rsb_top) <- ret_pc;
    t.rsb_top <- t.rsb_top + 1
  end
  else begin
    (* Overflow: shift (oldest entry lost). *)
    Array.blit t.rsb 1 t.rsb 0 (t.cfg.rsb_depth - 1);
    t.rsb.(t.cfg.rsb_depth - 1) <- ret_pc
  end

let rsb_pop t =
  if t.rsb_top > 0 then begin
    t.rsb_top <- t.rsb_top - 1;
    Some t.rsb.(t.rsb_top)
  end
  else None

(* Speculative RSB and TAGE-history state is not checkpointed: a squash
   simply clears it, like the simple recovery schemes of small cores. *)
let rsb_clear t =
  t.rsb_top <- 0;
  match t.tage with Some tg -> Tage.clear_history tg | None -> ()
