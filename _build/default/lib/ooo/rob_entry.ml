(* A reorder-buffer entry: one in-flight instruction with its renamed
   sources, results, memory/branch state, ProtISA protection tags and the
   defense policies' taint bookkeeping. *)

open Protean_isa

type mem_kind = M_none | M_load | M_store

type t = {
  seq : int;
  pc : int;
  insn : Insn.t;
  (* Renamed sources, in the order of [Insn.reads]. *)
  srcs : (Reg.t * Insn.role) array;
  src_producer : int array; (* producer seq, or -1 when read from regfile *)
  src_val : int64 array;
  src_ready : bool array;
  src_prot : bool array; (* ProtISA protection tags captured at rename *)
  (* Destinations, in the order of [Insn.writes]. *)
  dsts : Reg.t array;
  dst_val : int64 array;
  mutable out_prot : bool;
  (* Execution status. *)
  mutable issued : bool;
  mutable cycles_left : int;
  mutable executed : bool; (* results computed and visible *)
  mutable fault : bool; (* division fault pending (machine clear at commit) *)
  (* Memory access state (LSQ). *)
  mem_kind : mem_kind;
  mutable addr : int64;
  mutable msize : int;
  mutable addr_ready : bool;
  mutable mem_value : int64; (* loaded value / store data *)
  mutable mem_prot : bool; (* LSQ protection bit (Section IV-C2b) *)
  mutable fwd_from : int; (* seq of the store this load forwarded from *)
  (* Branch state. *)
  is_branch : bool;
  mutable pred_target : int;
  mutable actual_target : int;
  mutable mispredicted : bool;
  mutable resolved : bool;
  (* Defense policy state. *)
  mutable taint_root : int;
      (* seq of the youngest speculative access instruction this entry's
         data transitively depends on; -1 when untainted (STT's YRoT) *)
  mutable access_at_rename : bool;
  mutable late_access : bool;
      (* ProtTrack false negative: predicted no-access, read protected
         memory; triggers the ProtDelay fallback (Section VI-B2b) *)
  mutable fwd_block_store : int;
      (* seq of a tainted store this load forwarded from; blocks wakeup
         until the store's data untaints (Section VI-B2c) *)
  mutable pred_no_access : bool;
  pol_src_pub : bool array;
      (* per-source scratch for policies that track their own notion of
         public data (SPT's transmitted-state), parallel to [srcs] *)
  mutable pol_out_pub : bool;
  (* Timing, for the timing-based adversary and statistics. *)
  mutable t_fetch : int;
  mutable t_rename : int;
  mutable t_issue : int;
  mutable t_complete : int;
}

let mem_kind_of op =
  if Insn.is_load op then M_load
  else if Insn.is_store op then M_store
  else M_none

let create ~seq ~pc ~(insn : Insn.t) ~t_fetch =
  let srcs = Array.of_list (Insn.reads insn.op) in
  let dsts = Array.of_list (Insn.writes insn.op) in
  let n = Array.length srcs in
  {
    seq;
    pc;
    insn;
    srcs;
    src_producer = Array.make n (-1);
    src_val = Array.make n 0L;
    src_ready = Array.make n false;
    src_prot = Array.make n false;
    dsts;
    dst_val = Array.make (Array.length dsts) 0L;
    out_prot = insn.prot;
    issued = false;
    cycles_left = -1;
    executed = false;
    fault = false;
    mem_kind = mem_kind_of insn.op;
    addr = 0L;
    msize = 0;
    addr_ready = false;
    mem_value = 0L;
    mem_prot = false;
    fwd_from = -1;
    is_branch = Insn.is_branch insn.op;
    pred_target = -1;
    actual_target = -1;
    mispredicted = false;
    resolved = false;
    taint_root = -1;
    access_at_rename = false;
    late_access = false;
    fwd_block_store = -1;
    pred_no_access = false;
    pol_src_pub = Array.make n false;
    pol_out_pub = false;
    t_fetch;
    t_rename = -1;
    t_issue = -1;
    t_complete = -1;
  }

let is_load e = e.mem_kind = M_load
let is_store e = e.mem_kind = M_store
let is_transmitter e = Insn.is_transmitter e.insn.Insn.op

(* Does this entry have a protected *sensitive* register operand?  Access
   transmitters (Definition 1) additionally include loads whose sensitive
   memory input is protected, checked at execute via [mem_prot]. *)
let protected_sensitive_reg e =
  let any = ref false in
  Array.iteri
    (fun i (_, role) ->
      match role with
      | Insn.Addr | Insn.Cond_in | Insn.Target | Insn.Divide ->
          if e.src_prot.(i) then any := true
      | Insn.Data -> ())
    e.srcs;
  !any

(* Any protected register input at all (including data inputs). *)
let protected_reg_input e = Array.exists (fun b -> b) e.src_prot

let find_src e reg role =
  let found = ref (-1) in
  Array.iteri
    (fun i (r, ro) -> if Reg.equal r reg && ro = role && !found < 0 then found := i)
    e.srcs;
  !found
