(* Lockstep multicore simulation for the multi-thread (PARSEC-style)
   workloads: one pipeline per thread, sharing the last-level cache, all
   stepped cycle-by-cycle; the run ends when every core has halted
   (runtime = the slowest thread, a barrier at program end).

   Threads operate on disjoint address spaces (each core has its own
   memory image), so no coherence traffic is modelled; the shared L3
   still creates the capacity interactions that matter for the
   evaluation's normalized runtimes. *)

type result = {
  cycles : int;
  per_core : Pipeline.result array;
  finished : bool;
}

let run ?squash_bug ?spec_model ?(fuel = 10_000_000) (cfg : Config.t)
    ~(make_policy : unit -> Policy.t) (programs : Protean_isa.Program.t array)
    =
  let shared_l3 = Option.map Cache.create cfg.Config.l3 in
  let cores =
    Array.map
      (fun program ->
        Pipeline.create ?squash_bug ?spec_model ?shared_l3 cfg (make_policy ())
          program ~overlays:[])
      programs
  in
  let cycles = ref 0 in
  let all_done () = Array.for_all Pipeline.is_done cores in
  while (not (all_done ())) && !cycles < fuel do
    Array.iter (fun core -> if not (Pipeline.is_done core) then Pipeline.step core) cores;
    incr cycles
  done;
  {
    cycles = !cycles;
    per_core = Array.map Pipeline.finish cores;
    finished = all_done ();
  }
