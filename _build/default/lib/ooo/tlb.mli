(** A small fully-associative TLB with LRU replacement.

    TLB fills are part of the default adversary model's observations
    (AMuLeT's cache+TLB adversary), and misses add translation latency. *)

type t

val create : int -> t
val page_of : int64 -> int64

val access : t -> int64 -> bool
(** True on hit; fills (with LRU eviction) on miss. *)
