(* A compact TAGE direction predictor (Seznec & Michaud), the branch
   predictor named in the paper's Table III configuration.

   A base bimodal table is backed by [n_tables] tagged tables indexed by
   hashes of geometrically longer global-history prefixes.  Prediction
   comes from the longest-history matching table; allocation on
   mispredictions picks a not-useful entry in a longer-history table.

   The pipeline updates the global history speculatively at fetch and the
   tables at commit; squashes restore the history from a checkpoint the
   same way the RSB is handled (cleared — simple recovery). *)

type entry = {
  mutable tag : int;
  mutable ctr : int; (* 3-bit saturating: taken when >= 4 *)
  mutable useful : int; (* 2-bit usefulness *)
}

type t = {
  base : int array; (* bimodal 2-bit counters *)
  tables : entry array array;
  history_lengths : int array;
  mutable history : int; (* global history register, newest bit = lsb *)
  table_bits : int;
  tag_bits : int;
}

let n_tables = 4

let create ?(base_entries = 4096) ?(table_entries = 1024) () =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  {
    base = Array.make base_entries 1 (* weakly not-taken *);
    tables =
      Array.init n_tables (fun _ ->
          Array.init table_entries (fun _ -> { tag = -1; ctr = 4; useful = 0 }));
    history_lengths = [| 4; 8; 16; 32 |];
    history = 0;
    table_bits = log2 table_entries;
    tag_bits = 9;
  }

(* Fold the [len] newest history bits with the pc. *)
let index t i pc =
  let len = t.history_lengths.(i) in
  let h = t.history land ((1 lsl len) - 1) in
  let folded = ref 0 in
  let h = ref h in
  while !h <> 0 do
    folded := !folded lxor (!h land ((1 lsl t.table_bits) - 1));
    h := !h lsr t.table_bits
  done;
  (pc lxor !folded lxor (pc lsr t.table_bits))
  land ((1 lsl t.table_bits) - 1)

let tag_of t i pc =
  let len = t.history_lengths.(i) in
  let h = t.history land ((1 lsl len) - 1) in
  (pc lxor (h * 3) lxor (i * 0x9e37)) land ((1 lsl t.tag_bits) - 1)

(* The provider: longest-history table whose entry's tag matches. *)
let find_provider t pc =
  let rec loop i =
    if i < 0 then None
    else
      let e = t.tables.(i).(index t i pc) in
      if e.tag = tag_of t i pc then Some (i, e) else loop (i - 1)
  in
  loop (n_tables - 1)

let base_index t pc = pc land (Array.length t.base - 1)

(* Fetch-time snapshot: the indices and tags computed against the
   history the prediction used, so the commit-time update touches the
   same entries (real TAGE carries this with the branch). *)
type snapshot = {
  s_idx : int array;
  s_tag : int array;
  s_base : int;
  s_provider : int; (* table index, -1 = base *)
}

let snapshot t pc =
  let s_idx = Array.init n_tables (fun i -> index t i pc) in
  let s_tag = Array.init n_tables (fun i -> tag_of t i pc) in
  let provider = ref (-1) in
  for i = 0 to n_tables - 1 do
    if t.tables.(i).(s_idx.(i)).tag = s_tag.(i) then provider := i
  done;
  { s_idx; s_tag; s_base = base_index t pc; s_provider = !provider }

let predict_with t (s : snapshot) =
  if s.s_provider >= 0 then t.tables.(s.s_provider).(s.s_idx.(s.s_provider)).ctr >= 4
  else t.base.(s.s_base) >= 2

let predict t pc = predict_with t (snapshot t pc)

(* Speculative history update at fetch. *)
let push_history t taken =
  t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land 0xffffffff

(* Simple recovery: a squash clears the speculative history, like the
   RSB. *)
let clear_history t = t.history <- 0

(* Repair the newest (speculatively pushed) history bit once the actual
   outcome is known. *)
let repair_last t taken =
  t.history <- t.history land lnot 1 lor if taken then 1 else 0

let sat_inc v hi = if v < hi then v + 1 else v
let sat_dec v = if v > 0 then v - 1 else v

(* Commit-time update with the actual outcome, against the fetch-time
   snapshot. *)
let update_with t (s : snapshot) taken =
  if s.s_provider >= 0 then begin
    let i = s.s_provider in
    let e = t.tables.(i).(s.s_idx.(i)) in
    let correct = e.ctr >= 4 = taken in
    e.ctr <- (if taken then sat_inc e.ctr 7 else sat_dec e.ctr);
    if correct then e.useful <- sat_inc e.useful 3
    else begin
      e.useful <- sat_dec e.useful;
      (* Allocate in a longer-history table on a misprediction. *)
      if i + 1 < n_tables then begin
        let j = i + 1 in
        let cand = t.tables.(j).(s.s_idx.(j)) in
        if cand.useful = 0 then begin
          cand.tag <- s.s_tag.(j);
          cand.ctr <- (if taken then 4 else 3);
          cand.useful <- 0
        end
        else cand.useful <- sat_dec cand.useful
      end
    end
  end
  else begin
    let c = t.base.(s.s_base) in
    t.base.(s.s_base) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
    (* Allocate a tagged entry when the base mispredicts. *)
    if c >= 2 <> taken then begin
      let cand = t.tables.(0).(s.s_idx.(0)) in
      if cand.useful = 0 then begin
        cand.tag <- s.s_tag.(0);
        cand.ctr <- (if taken then 4 else 3)
      end
      else cand.useful <- sat_dec cand.useful
    end
  end

(* Snapshot-free update: recompute against the current history — an
   approximation used when the caller cannot carry the snapshot. *)
let update t pc taken = update_with t (snapshot t pc) taken
