(* A small fully-associative TLB with LRU replacement.  TLB fills and
   evictions are part of the default adversary model's observations
   (AMuLeT's cache+TLB adversary). *)

type t = {
  entries : int64 array; (* page numbers; -1 = invalid *)
  lru : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create n =
  {
    entries = Array.make n Int64.minus_one;
    lru = Array.make n 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let page_of addr = Int64.shift_right_logical addr 12

(* Returns true on hit; fills on miss. *)
let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let page = page_of addr in
  let n = Array.length t.entries in
  let rec find i = if i >= n then None else if Int64.equal t.entries.(i) page then Some i else find (i + 1) in
  match find 0 with
  | Some i ->
      t.lru.(i) <- t.clock;
      true
  | None ->
      t.misses <- t.misses + 1;
      let victim = ref 0 in
      for i = 1 to n - 1 do
        if t.lru.(i) < t.lru.(!victim) then victim := i
      done;
      t.entries.(!victim) <- page;
      t.lru.(!victim) <- t.clock;
      false
