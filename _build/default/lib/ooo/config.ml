(* Processor configurations.  The P-core and E-core presets follow the
   paper's Table III (an Intel Alder Lake i9-12900KS hybrid): pipeline
   widths, ROB/LQ/SQ sizes, predictor sizes and the cache hierarchy. *)

type cache_cfg = {
  size_kib : int;
  ways : int;
  line : int; (* bytes *)
  latency : int; (* cycles on hit *)
}

type bp_cfg = {
  bimodal_entries : int;
  btb_entries : int;
  rsb_depth : int;
  use_tage : bool;
      (* Table III names a TAGE predictor; the default configurations use
         the bimodal tables for run-to-run comparability, and the TAGE
         implementation can be enabled per-configuration *)
}

(* How ProtISA tracks its memory ProtSet (Section IX-A3 variants). *)
type prot_mem_mode =
  | Prot_mem_l1d (* protection-tagged L1D: the paper's design *)
  | Prot_mem_none (* tagging disabled: all memory assumed protected *)
  | Prot_mem_perfect (* idealized shadow memory tracking all of memory *)

type t = {
  name : string;
  fetch_width : int;
  rename_width : int;
  issue_width : int;
  commit_width : int;
  rob_size : int;
  lq_size : int;
  sq_size : int;
  frontend_latency : int; (* fetch-to-rename delay, cycles *)
  l1d : cache_cfg;
  l2 : cache_cfg;
  l3 : cache_cfg option;
  mem_latency : int;
  tlb_entries : int;
  tlb_miss_latency : int;
  bp : bp_cfg;
  alu_latency : int;
  mul_latency : int;
  div_base_latency : int;
  load_agu_latency : int; (* address generation before the cache access *)
  store_forward_latency : int;
  prot_mem : prot_mem_mode;
}

let p_core =
  {
    name = "P-core";
    fetch_width = 6;
    rename_width = 6;
    issue_width = 6;
    commit_width = 6;
    rob_size = 512;
    lq_size = 192;
    sq_size = 114;
    frontend_latency = 4;
    l1d = { size_kib = 48; ways = 12; line = 64; latency = 4 };
    l2 = { size_kib = 1280; ways = 10; line = 64; latency = 14 };
    l3 = Some { size_kib = 30 * 1024; ways = 12; line = 64; latency = 42 };
    mem_latency = 150;
    tlb_entries = 64;
    tlb_miss_latency = 20;
    bp = { bimodal_entries = 4096; btb_entries = 4096; rsb_depth = 16; use_tage = false };
    alu_latency = 1;
    mul_latency = 3;
    div_base_latency = 12;
    load_agu_latency = 1;
    store_forward_latency = 2;
    prot_mem = Prot_mem_l1d;
  }

let e_core =
  {
    p_core with
    name = "E-core";
    fetch_width = 5;
    rename_width = 5;
    issue_width = 5;
    commit_width = 5;
    rob_size = 256;
    lq_size = 80;
    sq_size = 50;
    frontend_latency = 4;
    l1d = { size_kib = 32; ways = 8; line = 64; latency = 4 };
    l2 = { size_kib = 2048; ways = 8; line = 64; latency = 16 };
    l3 = Some { size_kib = 30 * 1024; ways = 12; line = 64; latency = 42 };
  }

(* A small configuration for unit tests and fuzzing: short pipelines keep
   test programs fast while still exercising deep speculation. *)
let test_core =
  {
    p_core with
    name = "test-core";
    rob_size = 64;
    lq_size = 24;
    sq_size = 16;
    l1d = { size_kib = 4; ways = 2; line = 64; latency = 4 };
    l2 = { size_kib = 32; ways = 4; line = 64; latency = 12 };
    l3 = None;
    mem_latency = 60;
    bp = { bimodal_entries = 64; btb_entries = 64; rsb_depth = 8; use_tage = false };
  }

let prot_mem_name = function
  | Prot_mem_l1d -> "l1d"
  | Prot_mem_none -> "none"
  | Prot_mem_perfect -> "perfect"

let with_prot_mem mode t =
  { t with prot_mem = mode; name = t.name ^ "+protmem-" ^ prot_mem_name mode }

let with_tage t =
  { t with bp = { t.bp with use_tage = true }; name = t.name ^ "+tage" }

let cache_sets (c : cache_cfg) = c.size_kib * 1024 / (c.line * c.ways)
