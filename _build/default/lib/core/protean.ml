(* PROTEAN: a comprehensive, programmer-transparent, programmable Spectre
   defense — the top-level facade.

   The paper's contribution is the combination
   ProtISA + ProtCC + (ProtDelay | ProtTrack):

   - {!Isa} defines the ISA with the PROT prefix (ProtISA);
   - {!Protcc} programs ProtSets automatically per code class;
   - {!Defense} provides the hardware protection mechanisms, including
     the ProtDelay and ProtTrack enforcement of ProtISA ProtSets and the
     secure baselines (STT, SPT, SPT-SB) it is evaluated against;
   - {!Ooo} is the speculative out-of-order core they run on;
   - {!Arch} is the sequential reference machine, ProtSet semantics and
     security-contract observers.

   [secure] below is the one-call API: compile a program with the
   appropriate ProtCC passes and run it on PROTEAN hardware. *)

module Isa = struct
  module Reg = Protean_isa.Reg
  module Insn = Protean_isa.Insn
  module Asm = Protean_isa.Asm
  module Program = Protean_isa.Program
  module Encode = Protean_isa.Encode
end

module Arch = struct
  module Memory = Protean_arch.Memory
  module Sem = Protean_arch.Sem
  module Exec = Protean_arch.Exec
  module Protset = Protean_arch.Protset
  module Observer = Protean_arch.Observer
  module Contract = Protean_arch.Contract
end

module Ooo = struct
  module Config = Protean_ooo.Config
  module Pipeline = Protean_ooo.Pipeline
  module Policy = Protean_ooo.Policy
  module Stats = Protean_ooo.Stats
  module Hw_trace = Protean_ooo.Hw_trace
end

module Protcc = Protean_protcc.Protcc
module Defense = Protean_defense.Defense

type mechanism = Delay | Track

let policy_of_mechanism = function
  | Delay -> Protean_defense.Defense.prot_delay
  | Track -> Protean_defense.Defense.prot_track

(* Compile [program] with ProtCC (honouring per-function class labels and
   any [classes] overrides) and run it on PROTEAN hardware with the given
   protection [mechanism].  Returns the instrumented program and the
   pipeline result. *)
let secure ?(mechanism = Track) ?(config = Protean_ooo.Config.p_core)
    ?classes ?pass_override ?(overlays = []) ?fuel ?trace program =
  let compiled = Protcc.instrument ?classes ?pass_override program in
  let defense = policy_of_mechanism mechanism in
  let result =
    Protean_ooo.Pipeline.run ?fuel ?trace config
      (defense.Protean_defense.Defense.make ())
      compiled.Protcc.program ~overlays
  in
  (compiled, result)

(* Run an uninstrumented program on the unsafe baseline, for overhead
   normalization. *)
let run_unsafe ?(config = Protean_ooo.Config.p_core) ?(overlays = []) ?fuel
    ?trace program =
  Protean_ooo.Pipeline.run ?fuel ?trace config Protean_ooo.Policy.unsafe
    program ~overlays

(* Sequential reference execution, for functional validation. *)
let run_sequential ?fuel ?(overlays = []) program =
  let state = Protean_arch.Exec.init program in
  Protean_arch.Exec.overlay state overlays;
  Protean_arch.Exec.run_to_halt ?fuel program state;
  state
