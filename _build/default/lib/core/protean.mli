(** PROTEAN: a comprehensive, programmer-transparent, programmable
    Spectre defense — the top-level facade.

    The paper's contribution is the combination
    ProtISA + ProtCC + (ProtDelay | ProtTrack):

    - {!Isa} defines the ISA with the PROT prefix (ProtISA);
    - {!Protcc} programs ProtSets automatically per vulnerable-code class;
    - {!Defense} provides the hardware protection mechanisms, including
      ProtDelay/ProtTrack and the secure baselines (STT, SPT, SPT-SB);
    - {!Ooo} is the speculative out-of-order core they run on;
    - {!Arch} is the sequential reference machine, the architectural
      ProtSet semantics and the security-contract observers. *)

module Isa : sig
  module Reg = Protean_isa.Reg
  module Insn = Protean_isa.Insn
  module Asm = Protean_isa.Asm
  module Program = Protean_isa.Program
  module Encode = Protean_isa.Encode
end

module Arch : sig
  module Memory = Protean_arch.Memory
  module Sem = Protean_arch.Sem
  module Exec = Protean_arch.Exec
  module Protset = Protean_arch.Protset
  module Observer = Protean_arch.Observer
  module Contract = Protean_arch.Contract
end

module Ooo : sig
  module Config = Protean_ooo.Config
  module Pipeline = Protean_ooo.Pipeline
  module Policy = Protean_ooo.Policy
  module Stats = Protean_ooo.Stats
  module Hw_trace = Protean_ooo.Hw_trace
end

module Protcc = Protean_protcc.Protcc
module Defense = Protean_defense.Defense

type mechanism =
  | Delay  (** ProtDelay: lower hardware complexity (Section VI-B1) *)
  | Track  (** ProtTrack: higher performance (Section VI-B2) *)

val policy_of_mechanism : mechanism -> Defense.t

val secure :
  ?mechanism:mechanism ->
  ?config:Protean_ooo.Config.t ->
  ?classes:(string * Protean_isa.Program.klass) list ->
  ?pass_override:Protcc.pass ->
  ?overlays:(int64 * string) list ->
  ?fuel:int ->
  ?trace:bool ->
  Protean_isa.Program.t ->
  Protcc.result * Protean_ooo.Pipeline.result
(** Compile a program with ProtCC (honouring per-function class labels
    and any [classes] overrides) and run it on PROTEAN hardware with the
    given protection [mechanism].  Returns the instrumented program and
    the pipeline result. *)

val run_unsafe :
  ?config:Protean_ooo.Config.t ->
  ?overlays:(int64 * string) list ->
  ?fuel:int ->
  ?trace:bool ->
  Protean_isa.Program.t ->
  Protean_ooo.Pipeline.result
(** Run an uninstrumented program on the unsafe baseline (for overhead
    normalization). *)

val run_sequential :
  ?fuel:int ->
  ?overlays:(int64 * string) list ->
  Protean_isa.Program.t ->
  Protean_arch.Exec.state
(** Sequential reference execution, for functional validation. *)
