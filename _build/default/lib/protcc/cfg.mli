(** Instruction-granular control-flow graph of one function.

    ProtCC's analyses are register-level dataflow analyses over machine
    code (Section V-A).  Branch targets outside the function range and
    indirect jumps are treated as function exits; calls fall through (the
    callee is analyzed separately). *)

type t = {
  lo : int;  (** first pc of the function *)
  hi : int;  (** one past the last pc *)
  succs : int list array;  (** indexed by [pc - lo] *)
  preds : int list array;
  exits : int list;
}

val size : t -> int
val idx : t -> int -> int
val pc_of : t -> int -> int
val successor_pcs : lo:int -> hi:int -> int -> Protean_isa.Insn.t -> int list
val build : Protean_isa.Insn.t array -> lo:int -> hi:int -> t
val succs : t -> int -> int list
val preds : t -> int -> int list
val is_exit : t -> int -> bool
