(* Instruction-granular control-flow graph of one function.

   ProtCC's analyses are register-level dataflow analyses over machine
   code (Section V-A), so an instruction-level CFG is the natural
   representation.  Branch targets outside the function range and
   indirect jumps are treated as function exits. *)

open Protean_isa

type t = {
  lo : int; (* first pc of the function *)
  hi : int; (* one past the last pc *)
  succs : int list array; (* indexed by pc - lo *)
  preds : int list array;
  exits : int list; (* pcs with no intra-function successor *)
}

let size t = t.hi - t.lo
let idx t pc = pc - t.lo
let pc_of t i = t.lo + i

let successor_pcs ~lo ~hi pc (insn : Insn.t) =
  let in_range t = t >= lo && t < hi in
  let fall = if pc + 1 < hi then [ pc + 1 ] else [] in
  match insn.op with
  | Insn.Jcc (_, t) -> if in_range t then t :: fall else fall
  | Insn.Jmp t -> if in_range t then [ t ] else []
  | Insn.Call _ -> fall (* the callee returns; analyzed separately *)
  | Insn.Ret | Insn.Jmpi _ | Insn.Halt -> []
  | _ -> fall

let build (code : Insn.t array) ~lo ~hi =
  let n = hi - lo in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  for pc = lo to hi - 1 do
    succs.(pc - lo) <- successor_pcs ~lo ~hi pc code.(pc)
  done;
  Array.iteri
    (fun i ss ->
      List.iter (fun s -> preds.(s - lo) <- (lo + i) :: preds.(s - lo)) ss)
    succs;
  let exits =
    List.filter_map
      (fun i -> if succs.(i) = [] then Some (lo + i) else None)
      (List.init n (fun i -> i))
  in
  { lo; hi; succs; preds; exits }

let succs t pc = t.succs.(idx t pc)
let preds t pc = t.preds.(idx t pc)
let is_exit t pc = t.succs.(idx t pc) = []
