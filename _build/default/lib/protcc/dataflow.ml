(* Generic worklist dataflow solver over an instruction-level CFG, with
   register-set facts.  Used by every non-trivial ProtCC pass. *)

type dir = Forward | Backward

(* Solve a dataflow problem; returns (before, after) fact arrays indexed
   by [pc - cfg.lo].

   For a [Forward] problem, [before] is the meet over predecessors'
   [after] facts (or [boundary] at the function entry / when there are no
   predecessors) and [after.(i) = transfer pc before.(i)].  For a
   [Backward] problem the roles of predecessors and successors swap and
   [boundary] applies at exits.

   [top] is the identity of [meet] and the initial interior fact. *)
let solve (cfg : Cfg.t) ~dir ~top ~boundary ~meet ~transfer =
  let n = Cfg.size cfg in
  let before = Array.make n top in
  let after = Array.make n top in
  if n = 0 then (before, after)
  else begin
    let inputs, outputs, input_edges =
      match dir with
      | Forward -> (before, after, fun pc -> Cfg.preds cfg pc)
      | Backward -> (after, before, fun pc -> Cfg.succs cfg pc)
    in
    let boundary_at pc =
      match dir with
      | Forward -> pc = cfg.Cfg.lo
      | Backward -> Cfg.is_exit cfg pc
    in
    let in_work = Array.make n true in
    let work = Queue.create () in
    (* Process in an order friendly to the direction to converge fast. *)
    (match dir with
    | Forward -> for i = 0 to n - 1 do Queue.add i work done
    | Backward -> for i = n - 1 downto 0 do Queue.add i work done);
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      in_work.(i) <- false;
      let pc = Cfg.pc_of cfg i in
      let edge_facts =
        List.map (fun p -> outputs.(Cfg.idx cfg p)) (input_edges pc)
      in
      let input =
        let base = if boundary_at pc then boundary else top in
        match edge_facts with
        | [] -> base
        | _ when boundary_at pc ->
            (* Entries/exits with edges still meet the boundary fact. *)
            List.fold_left meet base edge_facts
        | f :: fs -> List.fold_left meet f fs
      in
      inputs.(i) <- input;
      let out = transfer pc input in
      if not (Regset.equal out outputs.(i)) then begin
        outputs.(i) <- out;
        let push =
          match dir with
          | Forward -> Cfg.succs cfg pc
          | Backward -> Cfg.preds cfg pc
        in
        List.iter
          (fun s ->
            let j = Cfg.idx cfg s in
            if not in_work.(j) then begin
              in_work.(j) <- true;
              Queue.add j work
            end)
          push
      end
    done;
    (before, after)
  end
