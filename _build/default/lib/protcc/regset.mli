(** Sets of architectural registers as bit masks — allocation-free facts
    for the dataflow solvers. *)

open Protean_isa

type t = int

val empty : t
val full : t
val singleton : Reg.t -> t
val mem : Reg.t -> t -> bool
val add : Reg.t -> t -> t
val remove : Reg.t -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val is_empty : t -> bool
val subset : t -> t -> bool
val of_list : Reg.t list -> t
val to_list : t -> Reg.t list
val pp : Format.formatter -> t -> unit
