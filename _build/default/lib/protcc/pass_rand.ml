(* ProtCC-RAND (Section VII-B4b): a testing-only pass that PROT-prefixes a
   random subset of instructions, producing arbitrary ProtISA binaries for
   fuzzing PROTEAN against the UNPROT-SEQ contract. *)

let run ~seed ~prob (_code : Protean_isa.Insn.t array) ~lo ~hi =
  let rng = Random.State.make [| seed; lo; hi |] in
  let out = Instr.make ~lo ~hi in
  for pc = lo to hi - 1 do
    out.Instr.prot.(pc - lo) <- Random.State.float rng 1.0 < prob
  done;
  out
