(* Shared helpers for ProtCC's leakage analyses: which operands of an
   instruction are fully transmitted, and whether an output's value is a
   deterministic function of already-public inputs. *)

open Protean_isa

(* Register operands that are *fully* transmitted when the instruction
   executes/resolves: memory-address registers, branch conditions and
   indirect targets.  Division operands are only *partially* transmitted
   (Section II-B1), so ProtCC-CT may not treat them as leaked; ProtCC-CTS
   must still require them to be publicly typed.  Non-transmitters (e.g.
   cmov/setcc, whose flags input has the [Cond_in] role but is pure data
   flow) transmit nothing. *)
let fully_transmitted op =
  if not (Insn.is_transmitter op) then Regset.empty
  else
    List.fold_left
      (fun acc (r, role) ->
        match role with
        | Insn.Addr | Insn.Cond_in | Insn.Target -> Regset.add r acc
        | Insn.Data | Insn.Divide -> acc)
      Regset.empty (Insn.reads op)

(* All sensitive operands, including the partially-transmitted division
   inputs. *)
let sensitive op =
  if not (Insn.is_transmitter op) then Regset.empty
  else
    List.fold_left
      (fun acc (r, _) -> Regset.add r acc)
      Regset.empty (Insn.sensitive_reads op)

(* Register inputs that flow into the instruction's outputs.  For
   transmitters these are the [Data]-role reads (address registers are
   separately forced public as sensitive operands); for non-transmitters
   every read flows into the output — in particular the flags input of
   cmov/setcc. *)
let data_inputs op =
  if not (Insn.is_transmitter op) then
    List.fold_left (fun acc (r, _) -> Regset.add r acc) Regset.empty
      (Insn.reads op)
  else
    List.fold_left
      (fun acc (r, role) ->
        match role with
        | Insn.Data -> Regset.add r acc
        | Insn.Addr | Insn.Cond_in | Insn.Target | Insn.Divide -> acc)
      Regset.empty (Insn.reads op)

let src_public pub = function
  | Insn.Imm _ -> true
  | Insn.Reg r -> Regset.mem r pub

let mem_public pub (m : Insn.mem) =
  List.for_all (fun r -> Regset.mem r pub) (Insn.mem_regs m)

(* Is the value written to output [r] by [op] a deterministic function of
   registers that are public in [pub] (or of constants)?  Loaded values
   are never considered public this way: they come from memory. *)
let output_public pub op r =
  let regs_pub rs = List.for_all (fun x -> Regset.mem x pub) rs in
  match op with
  | Insn.Mov (Insn.W64, d, s) when Reg.equal d r -> src_public pub s
  | Insn.Mov (Insn.W32, d, s) when Reg.equal d r -> src_public pub s
  | Insn.Mov (Insn.W8, d, s) when Reg.equal d r ->
      (* A byte write merges with the old value, so both must be public. *)
      src_public pub s && Regset.mem d pub
  | Insn.Mov _ -> false
  | Insn.Lea (d, m) when Reg.equal d r -> mem_public pub m
  | Insn.Lea _ -> false
  | Insn.Load _ -> false
  | Insn.Store _ -> false
  | Insn.Binop (_, d, s) ->
      (* Both the destination and the flags output are functions of the
         two inputs. *)
      ignore r;
      Regset.mem d pub && src_public pub s
  | Insn.Unop (_, d) -> Regset.mem d pub
  | Insn.Div (d, n, s) when Reg.equal d r -> regs_pub [ n ] && src_public pub s
  | Insn.Div _ -> false
  | Insn.Rem (d, n, s) when Reg.equal d r -> regs_pub [ n ] && src_public pub s
  | Insn.Rem _ -> false
  | Insn.Cmp (a, s) -> Regset.mem a pub && src_public pub s
  | Insn.Test (a, s) -> Regset.mem a pub && src_public pub s
  | Insn.Setcc (_, _) -> Regset.mem Reg.flags pub
  | Insn.Cmov (_, d, s) ->
      Regset.mem Reg.flags pub && Regset.mem d pub && src_public pub s
  | Insn.Jcc _ | Insn.Jmp _ | Insn.Jmpi _ -> false
  | Insn.Call _ | Insn.Push _ ->
      (* Output is the decremented stack pointer. *)
      Regset.mem Reg.rsp pub
  | Insn.Pop d ->
      if Reg.equal d r then false (* loaded value *)
      else Regset.mem Reg.rsp pub (* rsp update *)
  | Insn.Ret ->
      if Reg.equal r Reg.tmp then false else Regset.mem Reg.rsp pub
  | Insn.Nop | Insn.Halt -> false

(* Output registers whose protection status matters to ProtCC.  The hidden
   temporary holds the (public, code-pointer) return address; protecting
   it would needlessly turn every [ret] into an access transmitter. *)
let relevant_outputs op =
  List.filter (fun r -> not (Reg.equal r Reg.tmp)) (Insn.writes op)
