(* Result of instrumenting one function: the new PROT bit of every
   instruction and the identity moves to insert before instructions
   (ProtCC's mechanism for architecturally unprotecting a register,
   Section IV-B3). *)

open Protean_isa

type t = {
  lo : int;
  hi : int;
  prot : bool array; (* indexed by pc - lo: new PROT bit *)
  unprotect_before : Regset.t array; (* registers to unprotect before pc *)
}

let make ~lo ~hi =
  {
    lo;
    hi;
    prot = Array.make (hi - lo) false;
    unprotect_before = Array.make (hi - lo) Regset.empty;
  }

(* Identity move sequence unprotecting every register in [set]. *)
let id_moves set =
  List.map
    (fun r -> Insn.make (Insn.Mov (Insn.W64, r, Insn.Reg r)))
    (Regset.to_list set)

let inserted_count t =
  Array.fold_left
    (fun acc s -> acc + List.length (Regset.to_list s))
    0 t.unprotect_before

(* Registers eligible for unprotection via identity moves: general-purpose
   registers only (the flags register and the hidden temporary cannot be
   the destination of a register move). *)
let movable = Regset.of_list Reg.all_gprs
