lib/protcc/pass_unr.ml: Array Cfg Dataflow Insn Instr Leak List Protean_isa Reg Regset
