lib/protcc/dataflow.mli: Cfg Regset
