lib/protcc/protcc.ml: Array Hashtbl Insn Instr Leak List Pass_ct Pass_cts Pass_rand Pass_unr Program Protean_arch Protean_isa Regset
