lib/protcc/dataflow.ml: Array Cfg List Queue Regset
