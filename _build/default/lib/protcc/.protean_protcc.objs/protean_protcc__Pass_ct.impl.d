lib/protcc/pass_ct.ml: Array Cfg Dataflow Insn Instr Leak List Protean_isa Regset
