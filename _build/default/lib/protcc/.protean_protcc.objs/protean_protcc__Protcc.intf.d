lib/protcc/protcc.mli: Program Protean_arch Protean_isa Reg
