lib/protcc/leak.ml: Insn List Protean_isa Reg Regset
