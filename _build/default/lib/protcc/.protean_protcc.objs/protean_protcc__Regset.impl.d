lib/protcc/regset.ml: Format List Protean_isa Reg String
