lib/protcc/pass_cts.ml: Array Cfg Dataflow Insn Instr Leak List Protean_isa Reg Regset
