lib/protcc/regset.mli: Format Protean_isa Reg
