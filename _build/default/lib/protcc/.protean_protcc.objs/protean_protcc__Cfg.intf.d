lib/protcc/cfg.mli: Protean_isa
