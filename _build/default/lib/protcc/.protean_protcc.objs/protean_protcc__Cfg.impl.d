lib/protcc/cfg.ml: Array Insn List Protean_isa
