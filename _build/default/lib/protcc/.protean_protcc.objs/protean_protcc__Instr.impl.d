lib/protcc/instr.ml: Array Insn List Protean_isa Reg Regset
