lib/protcc/pass_rand.ml: Array Instr Protean_isa Random
