(** Generic worklist dataflow solver over an instruction-level CFG with
    register-set facts; used by every non-trivial ProtCC pass. *)

type dir = Forward | Backward

val solve :
  Cfg.t ->
  dir:dir ->
  top:Regset.t ->
  boundary:Regset.t ->
  meet:(Regset.t -> Regset.t -> Regset.t) ->
  transfer:(int -> Regset.t -> Regset.t) ->
  Regset.t array * Regset.t array
(** [(before, after)] fact arrays indexed by [pc - cfg.lo].  For a
    [Forward] problem, [before] is the meet over predecessors' [after]
    facts (the [boundary] fact applies at the entry) and
    [after.(i) = transfer pc before.(i)].  For [Backward] the roles swap
    and [boundary] applies at exits.  [top] is the meet identity. *)
