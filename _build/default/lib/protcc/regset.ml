(* Sets of architectural registers as bit masks.  With 18 architectural
   registers a set fits comfortably in one immediate integer, which keeps
   the dataflow solvers allocation-free. *)

open Protean_isa

type t = int

let empty = 0
let full = (1 lsl Reg.count) - 1

let singleton r = 1 lsl Reg.to_int r
let mem r s = s land singleton r <> 0
let add r s = s lor singleton r
let remove r s = s land lnot (singleton r)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let equal (a : t) (b : t) = a = b
let is_empty s = s = 0
let subset a b = a land lnot b = 0

let of_list rs = List.fold_left (fun s r -> add r s) empty rs
let to_list s = List.filter (fun r -> mem r s) Reg.all

let pp fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map Reg.name (to_list s)))
