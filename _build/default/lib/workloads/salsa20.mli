(** Salsa20 core (libsodium-style column/row rounds) as a CTS-class
    kernel. *)

val state_base : int
val out_base : int

val make :
  ?rounds:int -> ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t

val ref_output : int -> string
