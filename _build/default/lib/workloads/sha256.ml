(* SHA-256 compression (FIPS 180-4) over secret message blocks: message
   schedule expansion plus the 64-round loop, all branchless except the
   public round/block counters — a CTS-class kernel. *)

open Protean_isa

let h_base = 0x2000 (* 8 u32 running state *)
let msg_base = 0x2100 (* message blocks, secret *)
let w_base = 0x2200 (* 64-word schedule *)
let k_base = 0x2400 (* round constants *)
let out_base = 0x2500

let k_constants =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
    0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
    0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
    0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
    0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
    0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
    0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
    0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
    0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
    0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
    0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

let h_init =
  [|
    0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
    0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
  |]

let message blocks =
  String.init (64 * blocks) (fun i -> Char.chr ((i * 131) land 0xff))

(* dst = rotr32(src, k) into a fresh register, clobbers tmp. *)
let rotr_into c dst src ~tmp k =
  Asm.mov c dst (Asm.r src);
  Ckit.rotr32 c dst ~tmp k

let make ?(blocks = 2) ?(klass = Program.Cts) () =
  let c = Asm.create () in
  let words_data arr =
    let b = Buffer.create (4 * Array.length arr) in
    Array.iter (fun w -> Buffer.add_int32_le b w) arr;
    Buffer.contents b
  in
  Asm.data c ~addr:(Int64.of_int h_base) (words_data h_init);
  Asm.data c ~addr:(Int64.of_int msg_base) ~secret:true (message blocks);
  Asm.data c ~addr:(Int64.of_int k_base) (words_data k_constants);
  Asm.bss c ~addr:(Int64.of_int out_base) 32;
  let widx reg base = { Insn.base = None; index = Some reg; scale = 4; disp = base } in
  Asm.func c ~klass "sha256_compress";
  Asm.mov c Reg.r14 (Asm.i 0) (* block counter *);
  Asm.label c "block_loop";
  (* Schedule: W[0..15] from the message block (big-endian load is
     immaterial for the benchmark; we use little-endian words and a
     matching oracle). *)
  Asm.mov c Reg.r12 (Asm.i 0);
  Asm.mov c Reg.r13 (Asm.r Reg.r14);
  Asm.mul c Reg.r13 (Asm.i 64) (* byte offset of this block *);
  Asm.label c "w_copy";
  Asm.mov c Reg.rsi (Asm.r Reg.r12);
  Asm.mul c Reg.rsi (Asm.i 4);
  Asm.add c Reg.rsi (Asm.r Reg.r13);
  Asm.add c Reg.rsi (Asm.i msg_base);
  Asm.load c ~w:Insn.W32 Reg.rax (Asm.mb Reg.rsi);
  Asm.store c ~w:Insn.W32 (widx Reg.r12 w_base) (Asm.r Reg.rax);
  Asm.add c Reg.r12 (Asm.i 1);
  Asm.cmp c Reg.r12 (Asm.i 16);
  Asm.jlt c "w_copy";
  (* W[16..63] expansion. *)
  Asm.label c "w_expand";
  (* s0 = rotr7 ^ rotr18 ^ shr3 of W[t-15] *)
  Asm.load c ~w:Insn.W32 Reg.rax (widx Reg.r12 (w_base - (15 * 4)));
  rotr_into c Reg.rbx Reg.rax ~tmp:Reg.rsi 7;
  rotr_into c Reg.rcx Reg.rax ~tmp:Reg.rsi 18;
  Asm.xor c Reg.rbx (Asm.r Reg.rcx);
  Asm.shr c Reg.rax (Asm.i 3);
  Asm.xor c Reg.rbx (Asm.r Reg.rax) (* rbx = s0 *);
  (* s1 = rotr17 ^ rotr19 ^ shr10 of W[t-2] *)
  Asm.load c ~w:Insn.W32 Reg.rax (widx Reg.r12 (w_base - (2 * 4)));
  rotr_into c Reg.rdx Reg.rax ~tmp:Reg.rsi 17;
  rotr_into c Reg.rcx Reg.rax ~tmp:Reg.rsi 19;
  Asm.xor c Reg.rdx (Asm.r Reg.rcx);
  Asm.shr c Reg.rax (Asm.i 10);
  Asm.xor c Reg.rdx (Asm.r Reg.rax) (* rdx = s1 *);
  Asm.load c ~w:Insn.W32 Reg.rax (widx Reg.r12 (w_base - (16 * 4)));
  Asm.load c ~w:Insn.W32 Reg.rcx (widx Reg.r12 (w_base - (7 * 4)));
  Asm.add c Reg.rax (Asm.r Reg.rcx);
  Asm.add c Reg.rax (Asm.r Reg.rbx);
  Asm.add c Reg.rax (Asm.r Reg.rdx);
  Ckit.mask32 c Reg.rax;
  Asm.store c ~w:Insn.W32 (widx Reg.r12 w_base) (Asm.r Reg.rax);
  Asm.add c Reg.r12 (Asm.i 1);
  Asm.cmp c Reg.r12 (Asm.i 64);
  Asm.jlt c "w_expand";
  (* Working variables: a..d in rax..rdx, e..h in r8..r11. *)
  Asm.mov c Reg.rdi (Asm.i h_base);
  Asm.load c ~w:Insn.W32 Reg.rax (Asm.mbd Reg.rdi 0);
  Asm.load c ~w:Insn.W32 Reg.rbx (Asm.mbd Reg.rdi 4);
  Asm.load c ~w:Insn.W32 Reg.rcx (Asm.mbd Reg.rdi 8);
  Asm.load c ~w:Insn.W32 Reg.rdx (Asm.mbd Reg.rdi 12);
  Asm.load c ~w:Insn.W32 Reg.r8 (Asm.mbd Reg.rdi 16);
  Asm.load c ~w:Insn.W32 Reg.r9 (Asm.mbd Reg.rdi 20);
  Asm.load c ~w:Insn.W32 Reg.r10 (Asm.mbd Reg.rdi 24);
  Asm.load c ~w:Insn.W32 Reg.r11 (Asm.mbd Reg.rdi 28);
  Asm.mov c Reg.r12 (Asm.i 0);
  Asm.label c "rounds";
  (* t1 = h + S1(e) + Ch(e,f,g) + K[t] + W[t], in rbp. *)
  rotr_into c Reg.rbp Reg.r8 ~tmp:Reg.rsi 6;
  rotr_into c Reg.rdi Reg.r8 ~tmp:Reg.rsi 11;
  Asm.xor c Reg.rbp (Asm.r Reg.rdi);
  rotr_into c Reg.rdi Reg.r8 ~tmp:Reg.rsi 25;
  Asm.xor c Reg.rbp (Asm.r Reg.rdi) (* S1 *);
  Asm.mov c Reg.rdi (Asm.r Reg.r8);
  Asm.and_ c Reg.rdi (Asm.r Reg.r9);
  Asm.mov c Reg.rsi (Asm.r Reg.r8);
  Asm.not_ c Reg.rsi;
  Asm.and_ c Reg.rsi (Asm.r Reg.r10);
  Asm.xor c Reg.rdi (Asm.r Reg.rsi) (* Ch *);
  Asm.add c Reg.rbp (Asm.r Reg.rdi);
  Asm.add c Reg.rbp (Asm.r Reg.r11);
  Asm.load c ~w:Insn.W32 Reg.rdi (widx Reg.r12 k_base);
  Asm.add c Reg.rbp (Asm.r Reg.rdi);
  Asm.load c ~w:Insn.W32 Reg.rdi (widx Reg.r12 w_base);
  Asm.add c Reg.rbp (Asm.r Reg.rdi);
  Ckit.mask32 c Reg.rbp (* t1 *);
  (* t2 = S0(a) + Maj(a,b,c), in r13. *)
  rotr_into c Reg.r13 Reg.rax ~tmp:Reg.rsi 2;
  rotr_into c Reg.rdi Reg.rax ~tmp:Reg.rsi 13;
  Asm.xor c Reg.r13 (Asm.r Reg.rdi);
  rotr_into c Reg.rdi Reg.rax ~tmp:Reg.rsi 22;
  Asm.xor c Reg.r13 (Asm.r Reg.rdi) (* S0 *);
  Asm.mov c Reg.rdi (Asm.r Reg.rax);
  Asm.and_ c Reg.rdi (Asm.r Reg.rbx);
  Asm.mov c Reg.rsi (Asm.r Reg.rax);
  Asm.and_ c Reg.rsi (Asm.r Reg.rcx);
  Asm.xor c Reg.rdi (Asm.r Reg.rsi);
  Asm.mov c Reg.rsi (Asm.r Reg.rbx);
  Asm.and_ c Reg.rsi (Asm.r Reg.rcx);
  Asm.xor c Reg.rdi (Asm.r Reg.rsi) (* Maj *);
  Asm.add c Reg.r13 (Asm.r Reg.rdi);
  Ckit.mask32 c Reg.r13 (* t2 *);
  (* Rotate the working variables. *)
  Asm.mov c Reg.r11 (Asm.r Reg.r10) (* h = g *);
  Asm.mov c Reg.r10 (Asm.r Reg.r9) (* g = f *);
  Asm.mov c Reg.r9 (Asm.r Reg.r8) (* f = e *);
  Asm.mov c Reg.r8 (Asm.r Reg.rdx);
  Asm.add c Reg.r8 (Asm.r Reg.rbp);
  Ckit.mask32 c Reg.r8 (* e = d + t1 *);
  Asm.mov c Reg.rdx (Asm.r Reg.rcx) (* d = c *);
  Asm.mov c Reg.rcx (Asm.r Reg.rbx) (* c = b *);
  Asm.mov c Reg.rbx (Asm.r Reg.rax) (* b = a *);
  Asm.mov c Reg.rax (Asm.r Reg.rbp);
  Asm.add c Reg.rax (Asm.r Reg.r13);
  Ckit.mask32 c Reg.rax (* a = t1 + t2 *);
  Asm.add c Reg.r12 (Asm.i 1);
  Asm.cmp c Reg.r12 (Asm.i 64);
  Asm.jlt c "rounds";
  (* Add back into the running state. *)
  Asm.mov c Reg.rdi (Asm.i h_base);
  let addback reg off =
    Asm.load c ~w:Insn.W32 Reg.rsi (Asm.mbd Reg.rdi off);
    Asm.add c Reg.rsi (Asm.r reg);
    Ckit.mask32 c Reg.rsi;
    Asm.store c ~w:Insn.W32 (Asm.mbd Reg.rdi off) (Asm.r Reg.rsi)
  in
  addback Reg.rax 0;
  addback Reg.rbx 4;
  addback Reg.rcx 8;
  addback Reg.rdx 12;
  addback Reg.r8 16;
  addback Reg.r9 20;
  addback Reg.r10 24;
  addback Reg.r11 28;
  Asm.add c Reg.r14 (Asm.i 1);
  Asm.cmp c Reg.r14 (Asm.i blocks);
  Asm.jlt c "block_loop";
  (* Copy the digest out. *)
  Asm.mov c Reg.rdi (Asm.i h_base);
  Asm.mov c Reg.r8 (Asm.i out_base);
  for i = 0 to 7 do
    Asm.load c ~w:Insn.W32 Reg.rax (Asm.mbd Reg.rdi (4 * i));
    Asm.store c ~w:Insn.W32 (Asm.mbd Reg.r8 (4 * i)) (Asm.r Reg.rax)
  done;
  Asm.halt c;
  Asm.finish c

(* --- OCaml reference -------------------------------------------------- *)

let ref_digest blocks =
  let msg = message blocks in
  let h = Array.copy h_init in
  let rotr x k = Int32.logor (Int32.shift_right_logical x k) (Int32.shift_left x (32 - k)) in
  for blk = 0 to blocks - 1 do
    let w = Array.make 64 0l in
    for t = 0 to 15 do
      let off = (64 * blk) + (4 * t) in
      w.(t) <- String.get_int32_le msg off
    done;
    for t = 16 to 63 do
      let s0 =
        Int32.logxor
          (Int32.logxor (rotr w.(t - 15) 7) (rotr w.(t - 15) 18))
          (Int32.shift_right_logical w.(t - 15) 3)
      in
      let s1 =
        Int32.logxor
          (Int32.logxor (rotr w.(t - 2) 17) (rotr w.(t - 2) 19))
          (Int32.shift_right_logical w.(t - 2) 10)
      in
      w.(t) <- Int32.add (Int32.add w.(t - 16) s0) (Int32.add w.(t - 7) s1)
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for t = 0 to 63 do
      let s1 = Int32.logxor (Int32.logxor (rotr !e 6) (rotr !e 11)) (rotr !e 25) in
      let ch = Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g) in
      let t1 =
        Int32.add (Int32.add (Int32.add !hh s1) (Int32.add ch k_constants.(t))) w.(t)
      in
      let s0 = Int32.logxor (Int32.logxor (rotr !a 2) (rotr !a 13)) (rotr !a 22) in
      let maj =
        Int32.logxor
          (Int32.logxor (Int32.logand !a !b) (Int32.logand !a !c))
          (Int32.logand !b !c)
      in
      let t2 = Int32.add s0 maj in
      hh := !g;
      g := !f;
      f := !e;
      e := Int32.add !d t1;
      d := !c;
      c := !b;
      b := !a;
      a := Int32.add t1 t2
    done;
    h.(0) <- Int32.add h.(0) !a;
    h.(1) <- Int32.add h.(1) !b;
    h.(2) <- Int32.add h.(2) !c;
    h.(3) <- Int32.add h.(3) !d;
    h.(4) <- Int32.add h.(4) !e;
    h.(5) <- Int32.add h.(5) !f;
    h.(6) <- Int32.add h.(6) !g;
    h.(7) <- Int32.add h.(7) !hh
  done;
  let b = Buffer.create 32 in
  Array.iter (fun x -> Buffer.add_int32_le b x) h;
  Buffer.contents b
