(** Curve25519-style X-only Montgomery ladder over GF(2^61-1): a
    fixed-trip ladder of field multiplications with branchless
    conditional swaps driven by secret scalar bits — CTS class. *)

val key_base : int
val out_base : int
val scalar : int64
val base_x : int64
val bits : int

val make : ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t

val ref_ladder : unit -> int64 * int64
(** Canonical (x2, z2) after the ladder. *)
