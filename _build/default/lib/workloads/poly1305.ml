(* Poly1305-style one-time MAC, transplanted to the Mersenne field
   GF(2^61-1) (DESIGN.md substitution: the original evaluates a
   polynomial over 2^130-5 with multi-limb arithmetic; ours evaluates the
   same Horner recurrence h = (h + m_i) * r over a narrower Mersenne
   field with the same structure — secret key r, secret message, public
   addresses, branchless reduction). *)

open Protean_isa

let key_base = 0x2000 (* r (8 bytes) then s (8 bytes), secret *)
let msg_base = 0x2100 (* secret message words *)
let out_base = 0x2600

let r_key = 0x0eadbeef12345677L
let s_key = 0x1455667788990011L

let message n = Array.init n (fun i -> Int64.of_int ((i * 0x51ed) lxor 0x3c6e))

let make ?(words = 64) ?(klass = Program.Cts) () =
  let c = Asm.create () in
  let kb = Buffer.create 16 in
  Buffer.add_int64_le kb r_key;
  Buffer.add_int64_le kb s_key;
  Asm.data c ~addr:(Int64.of_int key_base) ~secret:true (Buffer.contents kb);
  let mb = Buffer.create (8 * words) in
  Array.iter (fun w -> Buffer.add_int64_le mb w) (message words);
  Asm.data c ~addr:(Int64.of_int msg_base) ~secret:true (Buffer.contents mb);
  Asm.bss c ~addr:(Int64.of_int out_base) 8;
  Asm.func c ~klass "poly1305_mac";
  (* rbx = r (clamped into the field), r8 = h = 0, r9 = message index. *)
  Asm.mov c Reg.rdi (Asm.i key_base);
  Asm.load c Reg.rbx (Asm.mb Reg.rdi);
  Asm.and_ c Reg.rbx (Asm.i64 Ckit.p61);
  Asm.mov c Reg.r8 (Asm.i 0);
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.label c "absorb";
  (* h += m[i] (folded), h *= r (mod p) *)
  Asm.load c Reg.rax
    { Insn.base = None; index = Some Reg.r9; scale = 8; disp = msg_base };
  Asm.and_ c Reg.rax (Asm.i64 Ckit.p61);
  Asm.add c Reg.r8 (Asm.r Reg.rax);
  Ckit.reduce61 c Reg.r8 ~tmp:Reg.rsi;
  Ckit.mul61 c ~dst:Reg.r10 ~a:Reg.r8 ~b:Reg.rbx ~t1:Reg.rcx ~t2:Reg.rdx
    ~t3:Reg.rsi;
  Asm.mov c Reg.r8 (Asm.r Reg.r10);
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i words);
  Asm.jlt c "absorb";
  (* tag = h + s *)
  Asm.load c Reg.rax (Asm.mbd Reg.rdi 8);
  Asm.add c Reg.r8 (Asm.r Reg.rax);
  Asm.mov c Reg.rsi (Asm.i out_base);
  Asm.store c (Asm.mb Reg.rsi) (Asm.r Reg.r8);
  Asm.halt c;
  Asm.finish c

(* --- OCaml reference -------------------------------------------------- *)

let ref_tag words =
  let r = Int64.logand r_key Ckit.p61 in
  let h =
    Array.fold_left
      (fun h m ->
        let m = Int64.logand m Ckit.p61 in
        Ckit.fmul (Int64.rem (Int64.add h m) Ckit.p61) r)
      0L (message words)
  in
  Int64.add h s_key

(* The simulated tag may carry a non-canonical representation of the
   field element (p instead of 0 in intermediate folds); compare modulo
   the field. *)
let tags_match simulated words =
  let expected = ref_tag words in
  Int64.equal simulated expected
  || Int64.equal
       (Int64.rem (Int64.sub simulated s_key) Ckit.p61)
       (Int64.rem (Int64.sub expected s_key) Ckit.p61)
