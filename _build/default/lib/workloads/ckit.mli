(** Emission helpers shared by the crypto kernels: 32-bit arithmetic in
    64-bit registers, rotations, and field arithmetic modulo the Mersenne
    prime 2^61 - 1 (the documented stand-in for the papers' wide fields:
    same structure — multiply, square, shift-based reduction — at a width
    the ISA handles natively). *)

open Protean_isa

val m32 : int64
val p61 : int64
(** 2^61 - 1, a Mersenne prime: reduction is shift-and-add. *)

val mask32 : Asm.ctx -> Reg.t -> unit
val rotl32 : Asm.ctx -> Reg.t -> tmp:Reg.t -> int -> unit
val rotl64 : Asm.ctx -> Reg.t -> tmp:Reg.t -> int -> unit
val rotr64 : Asm.ctx -> Reg.t -> tmp:Reg.t -> int -> unit
val rotr32 : Asm.ctx -> Reg.t -> tmp:Reg.t -> int -> unit

val reduce61 : Asm.ctx -> Reg.t -> tmp:Reg.t -> unit
(** Branchless fold of a value < 2^62 modulo p (result may be the
    non-canonical representative p ≡ 0). *)

val mul61 :
  Asm.ctx ->
  dst:Reg.t -> a:Reg.t -> b:Reg.t -> t1:Reg.t -> t2:Reg.t -> t3:Reg.t -> unit
(** Field multiplication via 31-bit limb products (nothing overflows 64
    bits); [dst] must differ from [a] and [b]; clobbers the temporaries. *)

(** Reference field arithmetic for oracles and constants. *)

val fadd : int64 -> int64 -> int64
val fmul : int64 -> int64 -> int64
val fpow : int64 -> int64 -> int64
