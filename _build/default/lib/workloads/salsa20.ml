(* Salsa20 core (the libsodium-style column/row rounds), as a CTS-class
   kernel.  Same ARX structure as ChaCha20 with a different quarter-round
   (xor of a rotated sum) and round pattern. *)

open Protean_isa

let state_base = 0x2000
let work_base = 0x2100
let out_base = 0x3000

let initial =
  [|
    0x61707865l; 0x13213141l; 0x51617181l; 0x91a1b1c1l;
    0xd1e1f101l; 0x3320646el; 0x21324354l; 0x65768798l;
    0xa9bacbdcl; 0xedfe0f10l; 0x79622d32l; 0x31425364l;
    0x75869708l; 0xa9caebfcl; 0x0d1e2f30l; 0x6b206574l;
  |]

(* Secret words of the state (the key positions of salsa20). *)
let secret_words = [ 1; 2; 3; 4; 11; 12; 13; 14 ]

(* The four (a,b,c,d) quadruples of a column round and of a row round. *)
let column_quads = [ (4, 0, 12, 8); (9, 5, 1, 13); (14, 10, 6, 2); (3, 15, 11, 7) ]
let row_quads = [ (1, 0, 3, 2); (6, 5, 4, 7); (11, 10, 9, 8); (12, 15, 14, 13) ]

(* b ^= rotl32(a + d, k) on state words, salsa-style: each quad applies
   four such steps with rotations 7, 9, 13, 18. *)
let emit_quad c (x1, x0, x3, x2) =
  let tmp = Reg.rsi and t2 = Reg.rbp in
  let w i = Asm.mbd Reg.rdi (4 * i) in
  let step dst a b k =
    Asm.load c ~w:Insn.W32 Reg.rax (w a);
    Asm.load c ~w:Insn.W32 Reg.rbx (w b);
    Asm.add c Reg.rax (Asm.r Reg.rbx);
    Ckit.mask32 c Reg.rax;
    Ckit.rotl32 c Reg.rax ~tmp k;
    ignore t2;
    Asm.load c ~w:Insn.W32 Reg.rcx (w dst);
    Asm.xor c Reg.rcx (Asm.r Reg.rax);
    Asm.store c ~w:Insn.W32 (w dst) (Asm.r Reg.rcx)
  in
  step x1 x0 x3 7;
  step x2 x1 x0 9;
  step x3 x2 x1 13;
  step x0 x3 x2 18

let emit_double_round c =
  List.iter (emit_quad c) column_quads;
  List.iter (emit_quad c) row_quads

let make ?(rounds = 10) ?(klass = Program.Cts) () =
  let c = Asm.create () in
  let buf = Buffer.create 64 in
  Array.iteri
    (fun i w -> if not (List.mem i secret_words) then Buffer.add_int32_le buf w
      else Buffer.add_int32_le buf 0l)
    initial;
  Asm.data c ~addr:(Int64.of_int state_base) (Buffer.contents buf);
  (* Secret key words overlay. *)
  let kb = Buffer.create 32 in
  List.iter (fun i -> Buffer.add_int32_le kb initial.(i)) secret_words;
  List.iteri
    (fun k i ->
      Asm.data c
        ~addr:(Int64.of_int (state_base + (4 * i)))
        ~secret:true
        (String.sub (Buffer.contents kb) (4 * k) 4))
    secret_words;
  Asm.bss c ~addr:(Int64.of_int out_base) 64;
  Asm.func c ~klass "salsa20_core";
  (* Working copy. *)
  Asm.mov c Reg.rdi (Asm.i state_base);
  Asm.mov c Reg.r8 (Asm.i work_base);
  for i = 0 to 15 do
    Asm.load c ~w:Insn.W32 Reg.rax (Asm.mbd Reg.rdi (4 * i));
    Asm.store c ~w:Insn.W32 (Asm.mbd Reg.r8 (4 * i)) (Asm.r Reg.rax)
  done;
  Asm.mov c Reg.rdi (Asm.i work_base);
  Asm.mov c Reg.r10 (Asm.i 0);
  Asm.label c "round_loop";
  emit_double_round c;
  Asm.add c Reg.r10 (Asm.i 1);
  Asm.cmp c Reg.r10 (Asm.i rounds);
  Asm.jlt c "round_loop";
  (* Feed-forward into the output. *)
  Asm.mov c Reg.rsi (Asm.i state_base);
  Asm.mov c Reg.r8 (Asm.i out_base);
  for i = 0 to 15 do
    Asm.load c ~w:Insn.W32 Reg.rax (Asm.mbd Reg.rdi (4 * i));
    Asm.load c ~w:Insn.W32 Reg.rbx (Asm.mbd Reg.rsi (4 * i));
    Asm.add c Reg.rax (Asm.r Reg.rbx);
    Ckit.mask32 c Reg.rax;
    Asm.store c ~w:Insn.W32 (Asm.mbd Reg.r8 (4 * i)) (Asm.r Reg.rax)
  done;
  Asm.halt c;
  Asm.finish c

(* --- OCaml reference -------------------------------------------------- *)

let ref_output rounds =
  let w = Array.copy initial in
  let rotl x k = Int32.logor (Int32.shift_left x k) (Int32.shift_right_logical x (32 - k)) in
  let step dst a b k = w.(dst) <- Int32.logxor w.(dst) (rotl (Int32.add w.(a) w.(b)) k) in
  let quad (x1, x0, x3, x2) =
    step x1 x0 x3 7;
    step x2 x1 x0 9;
    step x3 x2 x1 13;
    step x0 x3 x2 18
  in
  for _ = 1 to rounds do
    List.iter quad column_quads;
    List.iter quad row_quads
  done;
  let b = Buffer.create 64 in
  Array.iteri (fun i x -> Buffer.add_int32_le b (Int32.add x initial.(i))) w;
  Buffer.contents b
