(** XTEA block encryption (Feistel, add/shift/xor): the CT-class stand-in
    for the `bearssl` constant-time AES benchmark. *)

val key_base : int
val msg_base : int
val out_base : int
val num_rounds : int

val make :
  ?blocks:int -> ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t

val ref_encrypt : int -> string
