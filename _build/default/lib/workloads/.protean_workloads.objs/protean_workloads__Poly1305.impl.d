lib/workloads/poly1305.ml: Array Asm Buffer Ckit Insn Int64 Program Protean_isa Reg
