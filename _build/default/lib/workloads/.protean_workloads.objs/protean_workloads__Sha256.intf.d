lib/workloads/sha256.mli: Protean_isa
