lib/workloads/sha256.ml: Array Asm Buffer Char Ckit Insn Int32 Int64 Program Protean_isa Reg String
