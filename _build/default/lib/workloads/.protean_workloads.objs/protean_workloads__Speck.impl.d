lib/workloads/speck.ml: Array Asm Buffer Ckit Insn Int64 Program Protean_isa Reg
