lib/workloads/speck.mli: Protean_isa
