lib/workloads/ckit.mli: Asm Protean_isa Reg
