lib/workloads/suite.ml: Asm Chacha20 Char Djbsort Insn List Nginx_sim Parsec Poly1305 Program Protean_isa Reg Salsa20 Sha256 Spec Speck String Unr_crypto Wasm X25519 Xtea
