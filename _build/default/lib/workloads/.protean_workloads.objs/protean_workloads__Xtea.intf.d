lib/workloads/xtea.mli: Protean_isa
