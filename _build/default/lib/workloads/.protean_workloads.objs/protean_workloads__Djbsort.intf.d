lib/workloads/djbsort.mli: Protean_isa
