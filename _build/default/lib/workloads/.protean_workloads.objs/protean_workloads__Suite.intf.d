lib/workloads/suite.mli: Program Protean_isa
