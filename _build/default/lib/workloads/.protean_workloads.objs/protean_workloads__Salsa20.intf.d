lib/workloads/salsa20.mli: Protean_isa
