lib/workloads/parsec.ml: Array Asm Char Insn Int64 Program Protean_isa Reg String
