lib/workloads/ckit.ml: Asm Int64 Protean_isa
