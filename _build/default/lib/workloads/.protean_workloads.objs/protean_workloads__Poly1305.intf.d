lib/workloads/poly1305.mli: Protean_isa
