lib/workloads/x25519.mli: Protean_isa
