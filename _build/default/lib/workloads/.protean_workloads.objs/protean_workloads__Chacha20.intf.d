lib/workloads/chacha20.mli: Protean_isa
