lib/workloads/xtea.ml: Array Asm Buffer Ckit Insn Int32 Int64 Program Protean_isa Reg
