lib/workloads/x25519.ml: Asm Buffer Ckit Int64 Program Protean_isa Reg
