lib/workloads/djbsort.ml: Array Asm Buffer Insn Int64 List Program Protean_isa Reg
