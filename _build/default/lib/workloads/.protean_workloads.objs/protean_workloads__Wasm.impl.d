lib/workloads/wasm.ml: Asm Char Insn Int64 Program Protean_isa Reg String
