lib/workloads/unr_crypto.ml: Asm Buffer Ckit Int64 Program Protean_isa Reg
