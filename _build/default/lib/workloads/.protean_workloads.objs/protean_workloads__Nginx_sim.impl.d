lib/workloads/nginx_sim.ml: Asm Buffer Char Ckit Insn Int64 Program Protean_isa Reg String
