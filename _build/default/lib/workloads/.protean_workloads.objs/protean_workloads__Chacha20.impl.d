lib/workloads/chacha20.ml: Array Asm Buffer Ckit Insn Int32 Int64 List Program Protean_isa Reg
