lib/workloads/unr_crypto.mli: Protean_isa
