lib/workloads/spec.ml: Asm Char Insn Int64 Program Protean_isa Reg String
