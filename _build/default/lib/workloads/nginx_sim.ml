(* The multi-class HTTPS web-server workload (Section VIII-B3, Fig. 1).

   The paper's nginx experiment composes all four vulnerable-code classes
   in one program: a non-secret-accessing main server (request parsing,
   routing, session lookup) that delegates secret computation to
   cryptographic functions of different classes.  This workload mirrors
   that composition:

     server_main        ARCH  request parse + routing + session table
     dh_key_exchange    UNR   square-and-multiply modexp (branches on the
                              secret exponent — non-constant-time)
     record_encrypt     CTS   ChaCha20-style ARX block over the session key
     record_mac         CT    SHA-like compression over the record

   ProtCC compiles each function with its class's pass; SPT-SB (the only
   prior defense that secures the whole program) must treat everything as
   unrestricted.  Parameters [clients]/[requests] mirror the paper's
   c×r sweep (nginx.c1r1 ... nginx.c4r4). *)

open Protean_isa

let req_base = 0x2000 (* request bytes, public *)
let req_len = 256
let session_base = 0x3000 (* session table *)
let key_base = 0x4000 (* server private key, secret *)
let state_base = 0x5000 (* crypto working state *)
let out_base = 0x6000

let secret_exponent = 0x1b3a59c2d4e6f071L

let request_bytes clients requests =
  String.init (req_len * clients * requests) (fun i ->
      Char.chr (0x20 + ((i * 37) land 0x5f)))

let make ?(clients = 1) ?(requests = 1) () =
  let c = Asm.create () in
  let total = clients * requests in
  Asm.data c ~addr:(Int64.of_int req_base) (request_bytes clients requests);
  Asm.bss c ~addr:(Int64.of_int session_base) (64 * 8);
  let kb = Buffer.create 8 in
  Buffer.add_int64_le kb secret_exponent;
  Asm.data c ~addr:(Int64.of_int key_base) ~secret:true (Buffer.contents kb);
  Asm.bss c ~addr:(Int64.of_int state_base) 256;
  Asm.bss c ~addr:(Int64.of_int out_base) (16 * total);
  Asm.set_main c;

  (* ------------------------------------------------------------------ *)
  (* ARCH: the main server loop — parse, route, session lookup.          *)
  (* ------------------------------------------------------------------ *)
  Asm.func c ~klass:Program.Arch "server_main";
  Asm.mov c Reg.r15 (Asm.i 0) (* request index *);
  Asm.label c "accept";
  (* parse: scan the request for the header/body split, hashing bytes *)
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.mov c Reg.r8 (Asm.i 5381) (* uri hash *);
  Asm.mov c Reg.rdi (Asm.r Reg.r15);
  Asm.mul c Reg.rdi (Asm.i req_len);
  Asm.label c "parse";
  Asm.mov c Reg.rsi (Asm.r Reg.rdi);
  Asm.add c Reg.rsi (Asm.r Reg.rcx);
  Asm.load c ~w:Insn.W8 Reg.rax (Asm.mem ~index:Reg.rsi ~disp:req_base ());
  Asm.mul c Reg.r8 (Asm.i 33);
  Asm.add c Reg.r8 (Asm.r Reg.rax);
  Asm.cmp c Reg.rax (Asm.i 0x2f) (* '/' ends the method token *);
  Asm.jz c "parsed";
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i req_len);
  Asm.jlt c "parse";
  Asm.label c "parsed";
  (* session lookup: open-addressing probe *)
  Asm.mov c Reg.rsi (Asm.r Reg.r8);
  Asm.and_ c Reg.rsi (Asm.i 63);
  Asm.label c "probe";
  Asm.load c Reg.rax (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:session_base ());
  Asm.test c Reg.rax (Asm.r Reg.rax);
  Asm.jz c "miss";
  Asm.cmp c Reg.rax (Asm.r Reg.r8);
  Asm.jz c "hit";
  Asm.add c Reg.rsi (Asm.i 1);
  Asm.and_ c Reg.rsi (Asm.i 63);
  Asm.jmp c "probe";
  Asm.label c "miss";
  Asm.store c (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:session_base ()) (Asm.r Reg.r8);
  (* new session: run the DH key exchange (UNR) *)
  Asm.call c "dh_key_exchange";
  Asm.label c "hit";
  (* encrypt the response record (CTS) and MAC it (CT) *)
  Asm.call c "record_encrypt";
  Asm.call c "record_mac";
  (* store the response tag *)
  Asm.mov c Reg.rsi (Asm.r Reg.r15);
  Asm.mul c Reg.rsi (Asm.i 16);
  Asm.add c Reg.rsi (Asm.i out_base);
  Asm.store c (Asm.mb Reg.rsi) (Asm.r Reg.rax);
  Asm.add c Reg.r15 (Asm.i 1);
  Asm.cmp c Reg.r15 (Asm.i total);
  Asm.jlt c "accept";
  Asm.halt c;

  (* ------------------------------------------------------------------ *)
  (* UNR: DH key exchange — branches on secret exponent bits.            *)
  (* ------------------------------------------------------------------ *)
  Asm.func c ~klass:Program.Unr "dh_key_exchange";
  Asm.push c (Asm.r Reg.rcx);
  Asm.push c (Asm.r Reg.r8);
  Asm.mov c Reg.rbx (Asm.i 7) (* generator *);
  Asm.load c Reg.r13 (Asm.mem ~disp:key_base ());
  Asm.mov c Reg.r8 (Asm.i 1) (* acc *);
  Asm.mov c Reg.r14 (Asm.i 0);
  Asm.label c "dh_bits";
  Asm.mov c Reg.rax (Asm.r Reg.r13);
  Asm.shr c Reg.rax (Asm.r Reg.r14);
  Asm.and_ c Reg.rax (Asm.i 1);
  Asm.test c Reg.rax (Asm.r Reg.rax);
  Asm.jz c "dh_skip" (* secret-dependent branch *);
  Ckit.mul61 c ~dst:Reg.r10 ~a:Reg.r8 ~b:Reg.rbx ~t1:Reg.rcx ~t2:Reg.rdx
    ~t3:Reg.rsi;
  Asm.mov c Reg.r8 (Asm.r Reg.r10);
  Asm.label c "dh_skip";
  Asm.mov c Reg.r9 (Asm.r Reg.rbx);
  Ckit.mul61 c ~dst:Reg.r10 ~a:Reg.rbx ~b:Reg.r9 ~t1:Reg.rcx ~t2:Reg.rdx
    ~t3:Reg.rsi;
  Asm.mov c Reg.rbx (Asm.r Reg.r10);
  Asm.add c Reg.r14 (Asm.i 1);
  Asm.cmp c Reg.r14 (Asm.i 20) (* scaled-down exponent window *);
  Asm.jlt c "dh_bits";
  (* derived session key into the crypto state *)
  Asm.store c (Asm.mem ~disp:state_base ()) (Asm.r Reg.r8);
  Asm.pop c Reg.r8;
  Asm.pop c Reg.rcx;
  Asm.ret c;

  (* ------------------------------------------------------------------ *)
  (* CTS: record encryption — ChaCha-style ARX over the session key.     *)
  (* ------------------------------------------------------------------ *)
  Asm.func c ~klass:Program.Cts "record_encrypt";
  Asm.push c (Asm.r Reg.rcx);
  Asm.load c Reg.rax (Asm.mem ~disp:state_base ()) (* session key *);
  Asm.mov c Reg.rbx (Asm.i64 0x61707865L);
  Asm.mov c Reg.rdx (Asm.i64 0x3320646eL);
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "enc_round";
  Asm.add c Reg.rax (Asm.r Reg.rbx);
  Asm.xor c Reg.rdx (Asm.r Reg.rax);
  Ckit.rotl64 c Reg.rdx ~tmp:Reg.rsi 16;
  Asm.add c Reg.rbx (Asm.r Reg.rdx);
  Asm.xor c Reg.rax (Asm.r Reg.rbx);
  Ckit.rotl64 c Reg.rax ~tmp:Reg.rsi 12;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i 20);
  Asm.jlt c "enc_round";
  Asm.store c (Asm.mem ~disp:(state_base + 8) ()) (Asm.r Reg.rax);
  Asm.store c (Asm.mem ~disp:(state_base + 16) ()) (Asm.r Reg.rdx);
  Asm.pop c Reg.rcx;
  Asm.ret c;

  (* ------------------------------------------------------------------ *)
  (* CT: record MAC — SHA-like mixing of the ciphertext words.           *)
  (* ------------------------------------------------------------------ *)
  Asm.func c ~klass:Program.Ct "record_mac";
  Asm.push c (Asm.r Reg.rcx);
  Asm.load c Reg.rax (Asm.mem ~disp:(state_base + 8) ());
  Asm.load c Reg.rbx (Asm.mem ~disp:(state_base + 16) ());
  Asm.mov c Reg.rdx (Asm.i64 0x6a09e667bb67ae85L);
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "mac_round";
  Asm.mov c Reg.rsi (Asm.r Reg.rax);
  Ckit.rotr64 c Reg.rsi ~tmp:Reg.rdi 6;
  Asm.xor c Reg.rdx (Asm.r Reg.rsi);
  Asm.add c Reg.rdx (Asm.r Reg.rbx);
  Asm.mov c Reg.rsi (Asm.r Reg.rbx);
  Ckit.rotr64 c Reg.rsi ~tmp:Reg.rdi 11;
  Asm.xor c Reg.rax (Asm.r Reg.rsi);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i 16);
  Asm.jlt c "mac_round";
  Asm.mov c Reg.rax (Asm.r Reg.rdx) (* tag in rax *);
  Asm.pop c Reg.rcx;
  Asm.ret c;
  Asm.finish c

(* The c×r sweep of Table V. *)
let variants =
  [
    ("nginx.c1r1", (1, 1));
    ("nginx.c2r2", (2, 2));
    ("nginx.c1r4", (1, 4));
    ("nginx.c4r1", (4, 1));
    ("nginx.c4r4", (4, 4));
  ]
