(* XTEA block encryption (Needham–Wheeler) — the CT-class Feistel kernel
   standing in for the `bearssl` constant-time AES benchmark (DESIGN.md
   substitution: both are branchless block ciphers; XTEA's
   add/shift/xor rounds are natively expressible on our ISA). *)

open Protean_isa

let key_base = 0x2000 (* 4 x u32, secret *)
let msg_base = 0x2100
let out_base = 0x2200

let num_rounds = 32
let delta = 0x9e3779b9L
let key = [| 0x01234567l; 0x89abcdefl; 0xfedcba98l; 0x76543210l |]

let plaintext blocks =
  Array.init (2 * blocks) (fun i -> Int32.of_int ((i * 0x1357) lxor 0xbeef))

let make ?(blocks = 16) ?(klass = Program.Ct) () =
  let c = Asm.create () in
  let kb = Buffer.create 16 in
  Array.iter (fun w -> Buffer.add_int32_le kb w) key;
  Asm.data c ~addr:(Int64.of_int key_base) ~secret:true (Buffer.contents kb);
  let pb = Buffer.create (8 * 2 * blocks) in
  Array.iter (fun w -> Buffer.add_int32_le pb w) (plaintext blocks);
  Asm.data c ~addr:(Int64.of_int msg_base) ~secret:true (Buffer.contents pb);
  Asm.bss c ~addr:(Int64.of_int out_base) (8 * blocks);
  (* One half-round: v0 += (((v1<<4 ^ v1>>5) + v1) ^ (sum + key[sum&3])).
     v0 = rax, v1 = rbx, sum = rcx; temporaries rdx, rsi, rdi. *)
  let half c ~v0 ~v1 ~keyidx_shift =
    Asm.mov c Reg.rdx (Asm.r v1);
    Asm.shl c Reg.rdx (Asm.i 4);
    Ckit.mask32 c Reg.rdx;
    Asm.mov c Reg.rsi (Asm.r v1);
    Asm.shr c Reg.rsi (Asm.i 5);
    Asm.xor c Reg.rdx (Asm.r Reg.rsi);
    Asm.add c Reg.rdx (Asm.r v1);
    Ckit.mask32 c Reg.rdx;
    (* key index: (sum >> shift) & 3 *)
    Asm.mov c Reg.rsi (Asm.r Reg.rcx);
    if keyidx_shift > 0 then Asm.shr c Reg.rsi (Asm.i keyidx_shift);
    Asm.and_ c Reg.rsi (Asm.i 3);
    Asm.load c ~w:Insn.W32 Reg.rdi
      { Insn.base = None; index = Some Reg.rsi; scale = 4; disp = key_base };
    Asm.add c Reg.rdi (Asm.r Reg.rcx);
    Ckit.mask32 c Reg.rdi;
    Asm.xor c Reg.rdx (Asm.r Reg.rdi);
    Asm.add c v0 (Asm.r Reg.rdx);
    Ckit.mask32 c v0
  in
  Asm.func c ~klass "xtea_encrypt";
  Asm.mov c Reg.r9 (Asm.i 0) (* block index *);
  Asm.label c "blk";
  Asm.mov c Reg.r10 (Asm.r Reg.r9);
  Asm.mul c Reg.r10 (Asm.i 8);
  Asm.mov c Reg.r11 (Asm.r Reg.r10);
  Asm.add c Reg.r10 (Asm.i msg_base);
  Asm.add c Reg.r11 (Asm.i out_base);
  Asm.load c ~w:Insn.W32 Reg.rax (Asm.mb Reg.r10) (* v0 *);
  Asm.load c ~w:Insn.W32 Reg.rbx (Asm.mbd Reg.r10 4) (* v1 *);
  Asm.mov c Reg.rcx (Asm.i 0) (* sum *);
  Asm.mov c Reg.r8 (Asm.i 0) (* round counter *);
  Asm.label c "round";
  half c ~v0:Reg.rax ~v1:Reg.rbx ~keyidx_shift:0;
  Asm.add c Reg.rcx (Asm.i64 delta);
  Ckit.mask32 c Reg.rcx;
  half c ~v0:Reg.rbx ~v1:Reg.rax ~keyidx_shift:11;
  Asm.add c Reg.r8 (Asm.i 1);
  Asm.cmp c Reg.r8 (Asm.i num_rounds);
  Asm.jlt c "round";
  Asm.store c ~w:Insn.W32 (Asm.mb Reg.r11) (Asm.r Reg.rax);
  Asm.store c ~w:Insn.W32 (Asm.mbd Reg.r11 4) (Asm.r Reg.rbx);
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i blocks);
  Asm.jlt c "blk";
  Asm.halt c;
  Asm.finish c

(* --- OCaml reference -------------------------------------------------- *)

let ref_encrypt blocks =
  let pt = plaintext blocks in
  let out = Buffer.create (8 * blocks) in
  let m32 v = Int32.of_int (Int64.to_int (Int64.logand v 0xffffffffL)) in
  for blk = 0 to blocks - 1 do
    let v0 = ref pt.(2 * blk) and v1 = ref pt.((2 * blk) + 1) in
    let sum = ref 0L in
    for _ = 1 to num_rounds do
      let mix v k =
        Int32.logxor
          (Int32.add
             (Int32.logxor (Int32.shift_left v 4) (Int32.shift_right_logical v 5))
             v)
          k
      in
      let k0 = Int32.add (m32 !sum) key.(Int64.to_int (Int64.logand !sum 3L)) in
      v0 := Int32.add !v0 (mix !v1 k0);
      sum := Int64.logand (Int64.add !sum delta) 0xffffffffL;
      let ki = Int64.to_int (Int64.logand (Int64.shift_right_logical !sum 11) 3L) in
      let k1 = Int32.add (m32 !sum) key.(ki) in
      v1 := Int32.add !v1 (mix !v0 k1)
    done;
    Buffer.add_int32_le out !v0;
    Buffer.add_int32_le out !v1
  done;
  Buffer.contents out
