(** Registry of every benchmark in the performance evaluation
    (Section VIII-B), with suite and vulnerable-code-class metadata. *)

open Protean_isa

type kind =
  | Single of (unit -> Program.t)
  | Multi of (unit -> Program.t array)  (** one program per thread *)

type benchmark = {
  name : string;
  suite : string;
  klass : Program.klass;
  kind : kind;
}

val spec2017 : benchmark list
(** SPEC CPU2017-style general-purpose kernels (ARCH class). *)

val spec2017_int : benchmark list
(** The SPECint subset used by the Section IX studies. *)

val parsec : benchmark list
(** PARSEC-style multi-thread kernels, run on the full multicore. *)

val arch_wasm : benchmark list
(** Sandboxed SPEC CPU2006-to-WebAssembly-style kernels. *)

val cts_crypto : benchmark list
(** Static constant-time primitives, in Table V's upstream-variant
    naming (hacl, sodium and ossl prefixes). *)

val ct_crypto : benchmark list
(** Constant-time (but not statically typeable) primitives. *)

val unr_crypto : benchmark list
(** Non-constant-time OpenSSL-style primitives. *)

val nginx : benchmark list
(** The multi-class web server, over the c×r client/request sweep. *)

val micro : benchmark list
(** Microbenchmarks for targeted studies (e.g. the 32-bit-index pattern
    behind SPT's w32 untaint fix). *)

val all : benchmark list
val find : string -> benchmark
