(* The SPEC CPU2017-style suite (DESIGN.md substitution): one synthetic
   kernel per paper benchmark, each reproducing the microarchitectural
   behaviour that dominates its namesake — branchy byte scanning
   (perlbench, xz), table-driven dispatch (gcc), pointer chasing (mcf),
   heap management (omnetpp), tree walks (xalancbmk), block SAD (x264),
   bitboards (deepsjeng), RNG playouts (leela), recursive backtracking
   (exchange2), dense linear algebra and stencils (bwaves, cactuBSSN,
   fotonik3d) and mixed arithmetic with divisions (nab).  All kernels
   are general-purpose (ARCH-class) code. *)

open Protean_isa

let data_base = 0x10000
let data_size = 16 * 1024
let heap_base = 0x20000
let out_base = 0x8000

let prologue () =
  let c = Asm.create () in
  Asm.data c
    ~addr:(Int64.of_int data_base)
    (String.init data_size (fun i -> Char.chr ((i * 131 + (i lsr 5)) land 0xff)));
  Asm.bss c ~addr:(Int64.of_int heap_base) (16 * 1024);
  Asm.bss c ~addr:(Int64.of_int out_base) 64;
  c

let finish_with c reg =
  Asm.store c (Asm.mem ~disp:out_base ()) (Asm.r reg);
  Asm.halt c;
  Asm.finish c

(* perlbench: string hashing with branchy character classification. *)
let perlbench ?(n = 4096) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "perlbench_kernel";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.mov c Reg.r8 (Asm.i 5381) (* hash *);
  Asm.mov c Reg.r9 (Asm.i 0) (* word count *);
  Asm.mark_measurement c;
  Asm.label c "scan";
  Asm.load c ~w:Insn.W8 Reg.rax (Asm.mem ~index:Reg.rcx ~disp:data_base ());
  (* hash = hash*33 + ch *)
  Asm.mov c Reg.rbx (Asm.r Reg.r8);
  Asm.mul c Reg.r8 (Asm.i 33);
  Asm.add c Reg.r8 (Asm.r Reg.rax);
  ignore Reg.rbx;
  (* classify: alpha? digit? space? *)
  Asm.cmp c Reg.rax (Asm.i 0x61);
  Asm.jlt c "not_lower";
  Asm.cmp c Reg.rax (Asm.i 0x7a);
  Asm.jgt c "not_lower";
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.jmp c "next";
  Asm.label c "not_lower";
  Asm.cmp c Reg.rax (Asm.i 0x30);
  Asm.jlt c "next";
  Asm.cmp c Reg.rax (Asm.i 0x39);
  Asm.jgt c "next";
  Asm.add c Reg.r9 (Asm.i 2);
  Asm.label c "next";
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i n);
  Asm.jlt c "scan";
  Asm.add c Reg.r8 (Asm.r Reg.r9);
  finish_with c Reg.r8

(* gcc: four interleaved table-driven finite-state machines — the
   loaded state feeds the next transition-table address, and independent
   machines give the unsafe core memory-level parallelism. *)
let gcc ?(n = 3072) ?(states = 16) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "gcc_kernel";
  (* transition table at heap: next = (state*7 + sym + 1) mod states *)
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "build";
  Asm.mov c Reg.rax (Asm.r Reg.rcx);
  Asm.mul c Reg.rax (Asm.i 7);
  Asm.add c Reg.rax (Asm.i 1);
  Asm.rem c Reg.rbx Reg.rax (Asm.i states);
  Asm.store c (Asm.mem ~index:Reg.rcx ~scale:8 ~disp:heap_base ()) (Asm.r Reg.rbx);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i (states * 8));
  Asm.jlt c "build";
  Asm.mark_measurement c;
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.mov c Reg.rdi (Asm.i 0) (* machine A state *);
  Asm.mov c Reg.r9 (Asm.i 1) (* machine B state *);
  Asm.mov c Reg.r10 (Asm.i 2) (* machine C state *);
  Asm.mov c Reg.r11 (Asm.i 3) (* machine D state *);
  Asm.mov c Reg.r8 (Asm.i 0) (* accepting count *);
  Asm.label c "run";
  let step state off =
    Asm.mov c Reg.rsi (Asm.r Reg.rcx);
    Asm.add c Reg.rsi (Asm.i off);
    Asm.and_ c Reg.rsi (Asm.i (data_size - 1));
    Asm.load c ~w:Insn.W8 Reg.rax (Asm.mem ~index:Reg.rsi ~disp:data_base ());
    Asm.and_ c Reg.rax (Asm.i 7);
    Asm.mov c Reg.rbx (Asm.r state);
    Asm.mul c Reg.rbx (Asm.i 8);
    Asm.add c Reg.rbx (Asm.r Reg.rax);
    Asm.load c state (Asm.mem ~index:Reg.rbx ~scale:8 ~disp:heap_base ());
    Asm.add c Reg.r8 (Asm.r state)
  in
  step Reg.rdi 0;
  step Reg.r9 1024;
  step Reg.r10 2048;
  step Reg.r11 3072;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i n);
  Asm.jlt c "run";
  finish_with c Reg.r8

(* mcf: network-simplex-flavoured arc relaxation with pointer chasing. *)
let mcf ?(nodes = 384) ?(rounds = 4) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "mcf_kernel";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "init";
  Asm.mov c Reg.rax (Asm.r Reg.rcx);
  Asm.mul c Reg.rax (Asm.i 193);
  Asm.add c Reg.rax (Asm.i 71);
  Asm.rem c Reg.rbx Reg.rax (Asm.i nodes);
  Asm.mov c Reg.rsi (Asm.r Reg.rcx);
  Asm.mul c Reg.rsi (Asm.i 24);
  Asm.add c Reg.rsi (Asm.i heap_base);
  Asm.store c (Asm.mb Reg.rsi) (Asm.r Reg.rbx) (* next *);
  Asm.mul c Reg.rbx (Asm.i 3);
  Asm.store c (Asm.mbd Reg.rsi 8) (Asm.r Reg.rbx) (* cost *);
  Asm.mov c Reg.rax (Asm.i 1000000);
  Asm.store c (Asm.mbd Reg.rsi 16) (Asm.r Reg.rax) (* potential *);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i nodes);
  Asm.jlt c "init";
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.label c "round";
  Asm.mov c Reg.rdi (Asm.i 0) (* cur *);
  Asm.mov c Reg.r10 (Asm.i 0) (* visits *);
  Asm.label c "relax";
  Asm.mov c Reg.rsi (Asm.r Reg.rdi);
  Asm.mul c Reg.rsi (Asm.i 24);
  Asm.add c Reg.rsi (Asm.i heap_base);
  Asm.load c Reg.rbx (Asm.mb Reg.rsi) (* next *);
  Asm.load c Reg.rdx (Asm.mbd Reg.rsi 8) (* cost *);
  Asm.load c Reg.rax (Asm.mbd Reg.rsi 16) (* potential *);
  (* neighbour potential *)
  Asm.mov c Reg.r11 (Asm.r Reg.rbx);
  Asm.mul c Reg.r11 (Asm.i 24);
  Asm.add c Reg.r11 (Asm.i heap_base);
  Asm.load c Reg.r12 (Asm.mbd Reg.r11 16);
  Asm.add c Reg.r12 (Asm.r Reg.rdx);
  Asm.cmp c Reg.r12 (Asm.r Reg.rax);
  Asm.jge c "no_improve";
  Asm.store c (Asm.mbd Reg.rsi 16) (Asm.r Reg.r12);
  Asm.label c "no_improve";
  Asm.mov c Reg.rdi (Asm.r Reg.rbx);
  Asm.add c Reg.r10 (Asm.i 1);
  Asm.cmp c Reg.r10 (Asm.i nodes);
  Asm.jlt c "relax";
  Asm.mark_measurement c;
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i rounds);
  Asm.jlt c "round";
  finish_with c Reg.r12

(* omnetpp: binary-heap event queue insert/extract churn. *)
let omnetpp ?(events = 512) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "omnetpp_kernel";
  (* heap array at heap_base; r8 = heap size; process events in a loop *)
  Asm.mov c Reg.r8 (Asm.i 0);
  Asm.mov c Reg.rcx (Asm.i 0) (* event counter *);
  Asm.mov c Reg.r13 (Asm.i 12345) (* rng *);
  Asm.label c "evloop";
  (* rng = rng * 1103515245 + 12345 *)
  Asm.mul c Reg.r13 (Asm.i 1103515245);
  Asm.add c Reg.r13 (Asm.i 12345);
  Asm.and_ c Reg.r13 (Asm.i64 0x7fffffffL);
  (* insert rng as key: sift up *)
  Asm.mov c Reg.rdi (Asm.r Reg.r8);
  Asm.store c (Asm.mem ~index:Reg.rdi ~scale:8 ~disp:heap_base ()) (Asm.r Reg.r13);
  Asm.add c Reg.r8 (Asm.i 1);
  Asm.label c "siftup";
  Asm.test c Reg.rdi (Asm.r Reg.rdi);
  Asm.jz c "inserted";
  Asm.mov c Reg.rsi (Asm.r Reg.rdi);
  Asm.sub c Reg.rsi (Asm.i 1);
  Asm.shr c Reg.rsi (Asm.i 1) (* parent *);
  Asm.load c Reg.rax (Asm.mem ~index:Reg.rdi ~scale:8 ~disp:heap_base ());
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:heap_base ());
  Asm.cmp c Reg.rax (Asm.r Reg.rbx);
  Asm.jge c "inserted";
  Asm.store c (Asm.mem ~index:Reg.rdi ~scale:8 ~disp:heap_base ()) (Asm.r Reg.rbx);
  Asm.store c (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:heap_base ()) (Asm.r Reg.rax);
  Asm.mov c Reg.rdi (Asm.r Reg.rsi);
  Asm.jmp c "siftup";
  Asm.label c "inserted";
  (* every other event, pop the min (replace root with last, sift down
     one level only — bounded work per event) *)
  Asm.test c Reg.rcx (Asm.i 1);
  Asm.jz c "no_pop";
  Asm.sub c Reg.r8 (Asm.i 1);
  Asm.load c Reg.rax (Asm.mem ~index:Reg.r8 ~scale:8 ~disp:heap_base ());
  Asm.store c (Asm.mem ~disp:heap_base ()) (Asm.r Reg.rax);
  Asm.label c "no_pop";
  Asm.mark_measurement c;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i events);
  Asm.jlt c "evloop";
  finish_with c Reg.r8

(* xalancbmk: repeated walks down a pointer-linked DOM-style tree:
   each step loads the child pointer from the current node. *)
let xalancbmk ?(walks = 384) ?(depth = 10) ?(tree_nodes = 1024) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "xalanc_kernel";
  (* build: node k at heap + 24k: [left; right; tag] *)
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "build";
  Asm.mov c Reg.rax (Asm.r Reg.rcx);
  Asm.mul c Reg.rax (Asm.i 1663);
  Asm.add c Reg.rax (Asm.i 5);
  Asm.and_ c Reg.rax (Asm.i (tree_nodes - 1));
  Asm.mul c Reg.rax (Asm.i 24);
  Asm.add c Reg.rax (Asm.i heap_base);
  Asm.mov c Reg.rbx (Asm.r Reg.rcx);
  Asm.mul c Reg.rbx (Asm.i 24);
  Asm.add c Reg.rbx (Asm.i heap_base);
  Asm.store c (Asm.mb Reg.rbx) (Asm.r Reg.rax) (* left *);
  Asm.add c Reg.rax (Asm.i 24);
  Asm.store c (Asm.mbd Reg.rbx 8) (Asm.r Reg.rax) (* right *);
  Asm.store c (Asm.mbd Reg.rbx 16) (Asm.r Reg.rcx) (* tag *);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i tree_nodes);
  Asm.jlt c "build";
  Asm.mark_measurement c;
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.mov c Reg.r8 (Asm.i 0) (* checksum *);
  Asm.label c "walk";
  Asm.mov c Reg.rdi (Asm.i heap_base) (* root *);
  Asm.mov c Reg.rdx (Asm.r Reg.rcx) (* path bits *);
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.label c "descend";
  Asm.load c Reg.rax (Asm.mbd Reg.rdi 16);
  Asm.add c Reg.r8 (Asm.r Reg.rax);
  (* child select by path bit *)
  Asm.mov c Reg.rbx (Asm.r Reg.rdx);
  Asm.and_ c Reg.rbx (Asm.i 1);
  Asm.shr c Reg.rdx (Asm.i 1);
  Asm.mul c Reg.rbx (Asm.i 8);
  Asm.add c Reg.rbx (Asm.r Reg.rdi);
  Asm.load c Reg.rdi (Asm.mb Reg.rbx);
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i depth);
  Asm.jlt c "descend";
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i walks);
  Asm.jlt c "walk";
  finish_with c Reg.r8

(* x264: sum-of-absolute-differences block search. *)
let x264 ?(blocks = 48) ?(block_size = 16) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "x264_kernel";
  Asm.mov c Reg.rcx (Asm.i 0) (* block *);
  Asm.mov c Reg.r8 (Asm.i 0) (* best *);
  Asm.label c "blk";
  Asm.mov c Reg.rdx (Asm.i 0) (* offset candidate *);
  Asm.label c "cand";
  (* motion vector loaded from a table: its value offsets the reference *)
  Asm.mov c Reg.r10 (Asm.r Reg.rcx);
  Asm.add c Reg.r10 (Asm.r Reg.rdx);
  Asm.and_ c Reg.r10 (Asm.i 1023);
  Asm.load c Reg.r11 (Asm.mem ~index:Reg.r10 ~scale:8 ~disp:heap_base ());
  Asm.and_ c Reg.r11 (Asm.i 4095);
  Asm.mov c Reg.r9 (Asm.i 0) (* sad *);
  Asm.mov c Reg.rsi (Asm.i 0) (* pixel *);
  Asm.label c "pix";
  Asm.mov c Reg.rax (Asm.r Reg.rcx);
  Asm.mul c Reg.rax (Asm.i block_size);
  Asm.add c Reg.rax (Asm.r Reg.rsi);
  Asm.and_ c Reg.rax (Asm.i 8191);
  Asm.load c ~w:Insn.W8 Reg.rbx (Asm.mem ~index:Reg.rax ~disp:data_base ());
  Asm.add c Reg.rax (Asm.r Reg.r11);
  Asm.and_ c Reg.rax (Asm.i 8191);
  Asm.load c ~w:Insn.W8 Reg.rdi (Asm.mem ~index:Reg.rax ~disp:(data_base + 8192) ());
  Asm.sub c Reg.rbx (Asm.r Reg.rdi);
  (* abs via mask *)
  Asm.mov c Reg.rdi (Asm.r Reg.rbx);
  Asm.sar c Reg.rdi (Asm.i 63);
  Asm.xor c Reg.rbx (Asm.r Reg.rdi);
  Asm.sub c Reg.rbx (Asm.r Reg.rdi);
  Asm.add c Reg.r9 (Asm.r Reg.rbx);
  Asm.add c Reg.rsi (Asm.i 1);
  Asm.cmp c Reg.rsi (Asm.i block_size);
  Asm.jlt c "pix";
  Asm.add c Reg.r8 (Asm.r Reg.r9);
  Asm.add c Reg.rdx (Asm.i 1);
  Asm.cmp c Reg.rdx (Asm.i 4);
  Asm.jlt c "cand";
  Asm.mark_measurement c;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i blocks);
  Asm.jlt c "blk";
  finish_with c Reg.r8

(* deepsjeng: bitboard attacks — shifts, masks, table lookups addressed
   by board bits, and a branchy popcount. *)
let deepsjeng ?(positions = 768) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "deepsjeng_kernel";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.mov c Reg.r8 (Asm.i 0);
  Asm.mov c Reg.r13 (Asm.i64 0x123456789abcdefL) (* board *);
  Asm.label c "pos";
  (* board update: xorshift *)
  Asm.mov c Reg.rax (Asm.r Reg.r13);
  Asm.shl c Reg.rax (Asm.i 13);
  Asm.xor c Reg.r13 (Asm.r Reg.rax);
  Asm.mov c Reg.rax (Asm.r Reg.r13);
  Asm.shr c Reg.rax (Asm.i 7);
  Asm.xor c Reg.r13 (Asm.r Reg.rax);
  (* attack-table lookup chain: board bits -> table entry -> next table *)
  Asm.mov c Reg.rsi (Asm.r Reg.r13);
  Asm.and_ c Reg.rsi (Asm.i (data_size / 8 - 1));
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:data_base ());
  Asm.mov c Reg.rsi (Asm.r Reg.rbx);
  Asm.and_ c Reg.rsi (Asm.i (data_size / 8 - 1));
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:data_base ());
  Asm.and_ c Reg.rbx (Asm.r Reg.r13);
  (* branchy popcount of the attack set (bounded) *)
  Asm.and_ c Reg.rbx (Asm.i 0xffff);
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.label c "popcnt";
  Asm.test c Reg.rbx (Asm.r Reg.rbx);
  Asm.jz c "counted";
  Asm.mov c Reg.rax (Asm.r Reg.rbx);
  Asm.sub c Reg.rax (Asm.i 1);
  Asm.and_ c Reg.rbx (Asm.r Reg.rax);
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.jmp c "popcnt";
  Asm.label c "counted";
  Asm.add c Reg.r8 (Asm.r Reg.r9);
  Asm.mark_measurement c;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i positions);
  Asm.jlt c "pos";
  finish_with c Reg.r8

(* leela: RNG-driven playouts over a board array. *)
let leela ?(playouts = 96) ?(moves = 32) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "leela_kernel";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.mov c Reg.r13 (Asm.i 88172645) (* rng *);
  Asm.mov c Reg.r8 (Asm.i 0) (* wins *);
  Asm.label c "playout";
  Asm.mov c Reg.rdx (Asm.i 0);
  Asm.label c "move";
  Asm.mov c Reg.rax (Asm.r Reg.r13);
  Asm.shl c Reg.rax (Asm.i 13);
  Asm.xor c Reg.r13 (Asm.r Reg.rax);
  Asm.mov c Reg.rax (Asm.r Reg.r13);
  Asm.shr c Reg.rax (Asm.i 17);
  Asm.xor c Reg.r13 (Asm.r Reg.rax);
  Asm.mov c Reg.rsi (Asm.r Reg.r13);
  Asm.and_ c Reg.rsi (Asm.i 511);
  Asm.load c Reg.rax (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:heap_base ());
  Asm.add c Reg.rax (Asm.i 1);
  Asm.store c (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:heap_base ()) (Asm.r Reg.rax);
  Asm.add c Reg.rdx (Asm.i 1);
  Asm.cmp c Reg.rdx (Asm.i moves);
  Asm.jlt c "move";
  Asm.test c Reg.r13 (Asm.i 1);
  Asm.jz c "lost";
  Asm.add c Reg.r8 (Asm.i 1);
  Asm.label c "lost";
  Asm.mark_measurement c;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i playouts);
  Asm.jlt c "playout";
  finish_with c Reg.r8

(* exchange2: recursive backtracking over permutations (call/ret heavy). *)
let exchange2 ?(depth = 6) () =
  let c = prologue () in
  Asm.set_main c;
  Asm.func c ~klass:Program.Arch "exchange2_main";
  Asm.mov c Reg.rdi (Asm.i 0) (* level *);
  Asm.mov c Reg.r8 (Asm.i 0) (* solutions *);
  Asm.call c "permute";
  Asm.mark_measurement c;
  Asm.call c "permute";
  Asm.store c (Asm.mem ~disp:out_base ()) (Asm.r Reg.r8);
  Asm.halt c;
  Asm.func c ~klass:Program.Arch "permute";
  Asm.cmp c Reg.rdi (Asm.i depth);
  Asm.jlt c "recurse";
  Asm.add c Reg.r8 (Asm.i 1);
  Asm.ret c;
  Asm.label c "recurse";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "choices";
  Asm.push c (Asm.r Reg.rcx);
  Asm.push c (Asm.r Reg.rdi);
  Asm.add c Reg.rdi (Asm.i 1);
  Asm.call c "permute";
  Asm.pop c Reg.rdi;
  Asm.pop c Reg.rcx;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i 3);
  Asm.jlt c "choices";
  Asm.ret c;
  Asm.finish c

(* xz: LZ77-style longest-match search (byte compares, branchy). *)
let xz ?(n = 1024) ?(window = 64) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "xz_kernel";
  Asm.mov c Reg.rcx (Asm.i window) (* position *);
  Asm.mov c Reg.r8 (Asm.i 0) (* total match length *);
  Asm.label c "pos_loop";
  Asm.mov c Reg.rdx (Asm.i 1) (* candidate distance *);
  Asm.mov c Reg.r9 (Asm.i 0) (* best length *);
  Asm.label c "cand_loop";
  Asm.mov c Reg.rsi (Asm.i 0) (* match length *);
  Asm.label c "match_loop";
  Asm.mov c Reg.rax (Asm.r Reg.rcx);
  Asm.add c Reg.rax (Asm.r Reg.rsi);
  Asm.and_ c Reg.rax (Asm.i (data_size - 1));
  Asm.load c ~w:Insn.W8 Reg.rbx (Asm.mem ~index:Reg.rax ~disp:data_base ());
  Asm.sub c Reg.rax (Asm.r Reg.rdx);
  Asm.and_ c Reg.rax (Asm.i (data_size - 1));
  Asm.load c ~w:Insn.W8 Reg.rdi (Asm.mem ~index:Reg.rax ~disp:data_base ());
  Asm.cmp c Reg.rbx (Asm.r Reg.rdi);
  Asm.jnz c "match_done";
  Asm.add c Reg.rsi (Asm.i 1);
  Asm.cmp c Reg.rsi (Asm.i 8);
  Asm.jlt c "match_loop";
  Asm.label c "match_done";
  Asm.cmp c Reg.rsi (Asm.r Reg.r9);
  Asm.jle c "not_better";
  Asm.mov c Reg.r9 (Asm.r Reg.rsi);
  Asm.label c "not_better";
  Asm.shl c Reg.rdx (Asm.i 1);
  Asm.cmp c Reg.rdx (Asm.i window);
  Asm.jle c "cand_loop";
  Asm.add c Reg.r8 (Asm.r Reg.r9);
  Asm.mark_measurement c;
  Asm.add c Reg.rcx (Asm.i 3);
  Asm.cmp c Reg.rcx (Asm.i n);
  Asm.jlt c "pos_loop";
  finish_with c Reg.r8

(* bwaves: dense matrix-vector products. *)
let bwaves ?(dim = 40) ?(reps = 3) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "bwaves_kernel";
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.label c "rep";
  Asm.mov c Reg.rcx (Asm.i 0) (* row *);
  Asm.mov c Reg.r10 (Asm.i 0) (* row*dim, maintained additively *);
  Asm.label c "row";
  Asm.mov c Reg.rdx (Asm.i 0) (* col *);
  Asm.mov c Reg.r8 (Asm.i 0) (* dot *);
  Asm.label c "col";
  Asm.mov c Reg.rax (Asm.r Reg.r10);
  Asm.add c Reg.rax (Asm.r Reg.rdx);
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rax ~scale:8 ~disp:data_base ());
  Asm.load c Reg.rsi (Asm.mem ~index:Reg.rdx ~scale:8 ~disp:heap_base ());
  Asm.mul c Reg.rbx (Asm.r Reg.rsi);
  Asm.mov c Reg.rdi (Asm.r Reg.rbx);
  Asm.mul c Reg.rdi (Asm.i 5);
  Asm.add c Reg.rbx (Asm.r Reg.rdi);
  Asm.sar c Reg.rbx (Asm.i 2);
  Asm.add c Reg.r8 (Asm.r Reg.rbx);
  Asm.add c Reg.rdx (Asm.i 1);
  Asm.cmp c Reg.rdx (Asm.i dim);
  Asm.jlt c "col";
  Asm.store c (Asm.mem ~index:Reg.rcx ~scale:8 ~disp:heap_base ()) (Asm.r Reg.r8);
  Asm.add c Reg.r10 (Asm.i dim);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i dim);
  Asm.jlt c "row";
  Asm.mark_measurement c;
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i reps);
  Asm.jlt c "rep";
  finish_with c Reg.r8

(* cactuBSSN: wide-stencil arithmetic with many live temporaries. *)
let cactubssn ?(cells = 1200) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "cactu_kernel";
  Asm.mov c Reg.rcx (Asm.i 4);
  Asm.mark_measurement c;
  Asm.label c "cell";
  Asm.mov c Reg.rsi (Asm.r Reg.rcx);
  Asm.load c Reg.rax (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:data_base ());
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base + 8) ());
  Asm.load c Reg.rdx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base + 16) ());
  Asm.load c Reg.rdi (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base + 24) ());
  Asm.mov c Reg.r8 (Asm.r Reg.rax);
  Asm.mul c Reg.r8 (Asm.r Reg.rbx);
  Asm.mov c Reg.r9 (Asm.r Reg.rdx);
  Asm.mul c Reg.r9 (Asm.r Reg.rdi);
  Asm.add c Reg.r8 (Asm.r Reg.r9);
  Asm.mov c Reg.r9 (Asm.r Reg.rax);
  Asm.add c Reg.r9 (Asm.r Reg.rdx);
  Asm.mul c Reg.r9 (Asm.r Reg.rbx);
  Asm.sub c Reg.r8 (Asm.r Reg.r9);
  (* Christoffel-style dependent products *)
  Asm.mov c Reg.r10 (Asm.r Reg.r8);
  Asm.mul c Reg.r10 (Asm.r Reg.r8);
  Asm.add c Reg.r10 (Asm.r Reg.rax);
  Asm.mul c Reg.r10 (Asm.r Reg.rbx);
  Asm.add c Reg.r10 (Asm.r Reg.rdx);
  Asm.mul c Reg.r10 (Asm.i 3);
  Asm.add c Reg.r8 (Asm.r Reg.r10);
  Asm.sar c Reg.r8 (Asm.i 5);
  Asm.store c (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:heap_base ()) (Asm.r Reg.r8);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i cells);
  Asm.jlt c "cell";
  finish_with c Reg.r8

(* fotonik3d: 3D stencil over a flattened grid. *)
let fotonik3d ?(dim = 12) ?(sweeps = 3) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "fotonik_kernel";
  let plane = dim * dim in
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.label c "sweep";
  Asm.mov c Reg.rcx (Asm.i (plane + dim + 1));
  Asm.label c "cell";
  Asm.mov c Reg.rsi (Asm.r Reg.rcx);
  Asm.load c Reg.rax (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:data_base ());
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base + 8) ());
  Asm.add c Reg.rax (Asm.r Reg.rbx);
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base + (8 * dim)) ());
  Asm.add c Reg.rax (Asm.r Reg.rbx);
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base + (8 * plane)) ());
  Asm.add c Reg.rax (Asm.r Reg.rbx);
  Asm.mov c Reg.rdi (Asm.r Reg.rax);
  Asm.mul c Reg.rdi (Asm.r Reg.rax);
  Asm.add c Reg.rdi (Asm.i 9);
  Asm.mul c Reg.rdi (Asm.i 11);
  Asm.add c Reg.rax (Asm.r Reg.rdi);
  Asm.sar c Reg.rax (Asm.i 2);
  Asm.store c (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:heap_base ()) (Asm.r Reg.rax);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i (dim * dim * dim));
  Asm.jlt c "cell";
  Asm.mark_measurement c;
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i sweeps);
  Asm.jlt c "sweep";
  finish_with c Reg.rax

(* nab: molecular-mechanics-style mixed arithmetic with divisions. *)
let nab ?(atoms = 640) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "nab_kernel";
  Asm.mov c Reg.rcx (Asm.i 1);
  Asm.mov c Reg.r8 (Asm.i 0);
  Asm.label c "atom";
  Asm.mov c Reg.rax (Asm.r Reg.rcx);
  Asm.mul c Reg.rax (Asm.r Reg.rcx);
  Asm.add c Reg.rax (Asm.i 17);
  (* dependent force-field polynomial (serial arithmetic chain) *)
  Asm.mov c Reg.r9 (Asm.r Reg.rax);
  Asm.mul c Reg.r9 (Asm.r Reg.rax);
  Asm.add c Reg.r9 (Asm.r Reg.rax);
  Asm.mul c Reg.r9 (Asm.i 13);
  Asm.add c Reg.r9 (Asm.i 7);
  Asm.mul c Reg.r9 (Asm.r Reg.r9);
  Asm.add c Reg.rax (Asm.r Reg.r9);
  Asm.mov c Reg.rbx (Asm.r Reg.rcx);
  Asm.add c Reg.rbx (Asm.i 3);
  Asm.test c Reg.rcx (Asm.i 3);
  Asm.jnz c "no_div" (* one inverse-sqrt-style division per 4 atoms *);
  Asm.div c Reg.rdx Reg.rax (Asm.r Reg.rbx) (* distance-like quotient *);
  Asm.rem c Reg.rsi Reg.rax (Asm.r Reg.rbx);
  Asm.add c Reg.rdx (Asm.r Reg.rsi);
  Asm.mul c Reg.rdx (Asm.r Reg.rdx);
  Asm.add c Reg.r8 (Asm.r Reg.rdx);
  Asm.label c "no_div";
  Asm.add c Reg.r8 (Asm.r Reg.rax);
  Asm.mark_measurement c;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i atoms);
  Asm.jlt c "atom";
  finish_with c Reg.r8

(* The SPECint subset used for the ProtCC overhead and predictor
   studies. *)
let int_names =
  [
    "perlbench"; "gcc"; "mcf"; "omnetpp"; "xalancbmk"; "x264"; "deepsjeng";
    "leela"; "exchange2"; "xz";
  ]

let all =
  [
    ("perlbench", fun () -> perlbench ());
    ("gcc", fun () -> gcc ());
    ("mcf", fun () -> mcf ());
    ("omnetpp", fun () -> omnetpp ());
    ("xalancbmk", fun () -> xalancbmk ());
    ("x264", fun () -> x264 ());
    ("deepsjeng", fun () -> deepsjeng ());
    ("leela", fun () -> leela ());
    ("exchange2", fun () -> exchange2 ());
    ("xz", fun () -> xz ());
    ("bwaves", fun () -> bwaves ());
    ("cactuBSSN", fun () -> cactubssn ());
    ("fotonik3d", fun () -> fotonik3d ());
    ("nab", fun () -> nab ());
  ]
