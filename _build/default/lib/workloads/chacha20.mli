(** ChaCha20 keystream generation (RFC 8439 block function) as a
    CTS-class kernel: 32-bit ARX quarter-rounds on a memory-held state,
    secret key words, public addresses and counters. *)

val init_base : int
val work_base : int
val out_base : int

val make :
  ?variant:[ `Unrolled | `Looped ] ->
  ?blocks:int ->
  ?klass:Protean_isa.Program.klass ->
  unit ->
  Protean_isa.Program.t
(** [`Unrolled] is the HACL*-style fully unrolled double-round variant;
    [`Looped] the OpenSSL-style round loop. *)

val ref_block : int -> int32 array
(** Pure-OCaml reference keystream block for a counter value. *)

val ref_output : int -> string
(** Expected output bytes at {!out_base} for [blocks] blocks. *)
