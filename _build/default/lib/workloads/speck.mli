(** SPECK-128/128 block encryption (ARX): key schedule plus block loop,
    secret key and plaintext — the CT-class stand-in for the bitsliced
    `ctaes` benchmark. *)

val key_base : int
val msg_base : int
val out_base : int
val rounds : int

val make :
  ?blocks:int -> ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t

val ref_encrypt : int -> string
