(* The UNR-Crypto suite (Section VIII-B2): cryptographic routines that
   are *not* constant-time — they branch on and index by secret data, so
   only defenses that protect all architectural state (SPT-SB) or
   PROTEAN with ProtCC-UNR can fully secure them.

   - [modexp]  square-and-multiply modular exponentiation with a branch
     on each secret exponent bit (the classic non-CT `BN_mod_exp`
     pattern, over the GF(2^61-1) stand-in field);
   - [dh]      a Diffie–Hellman key agreement built from two modexps;
   - [ecadd]   repeated elliptic-curve point addition in affine
     coordinates with branchy special cases and a non-CT extended-
     Euclid modular inverse (the `EC_POINT_add` pattern). *)

open Protean_isa

let key_base = 0x2000
let out_base = 0x2100
let work_base = 0x2200

let secret_exponent = 0x1b3a59c2d4e6f071L
let generator = 7L

(* rbx^r13 mod p → r8, with a data-dependent branch per exponent bit.
   Clobbers most registers. *)
let emit_modexp c ~label_prefix =
  let l s = label_prefix ^ s in
  Asm.mov c Reg.r8 (Asm.i 1) (* acc *);
  Asm.mov c Reg.r14 (Asm.i 0) (* bit index *);
  Asm.label c (l "bit_loop");
  Asm.mov c Reg.rax (Asm.r Reg.r13);
  Asm.shr c Reg.rax (Asm.r Reg.r14);
  Asm.and_ c Reg.rax (Asm.i 1);
  Asm.test c Reg.rax (Asm.r Reg.rax);
  Asm.jz c (l "skip_mul") (* secret-dependent branch: UNR code *);
  Ckit.mul61 c ~dst:Reg.r10 ~a:Reg.r8 ~b:Reg.rbx ~t1:Reg.rcx ~t2:Reg.rdx
    ~t3:Reg.rsi;
  Asm.mov c Reg.r8 (Asm.r Reg.r10);
  Asm.label c (l "skip_mul");
  Asm.mov c Reg.r9 (Asm.r Reg.rbx);
  Ckit.mul61 c ~dst:Reg.r10 ~a:Reg.rbx ~b:Reg.r9 ~t1:Reg.rcx ~t2:Reg.rdx
    ~t3:Reg.rsi;
  Asm.mov c Reg.rbx (Asm.r Reg.r10);
  Asm.add c Reg.r14 (Asm.i 1);
  Asm.cmp c Reg.r14 (Asm.i 61);
  Asm.jlt c (l "bit_loop")

let modexp ?(klass = Program.Unr) () =
  let c = Asm.create () in
  let kb = Buffer.create 8 in
  Buffer.add_int64_le kb secret_exponent;
  Asm.data c ~addr:(Int64.of_int key_base) ~secret:true (Buffer.contents kb);
  Asm.bss c ~addr:(Int64.of_int out_base) 8;
  Asm.func c ~klass "bn_mod_exp";
  Asm.mov c Reg.rdi (Asm.i key_base);
  Asm.load c Reg.r13 (Asm.mb Reg.rdi);
  Asm.mov c Reg.rbx (Asm.i64 generator);
  emit_modexp c ~label_prefix:"me_";
  Asm.mov c Reg.rsi (Asm.i out_base);
  Asm.store c (Asm.mb Reg.rsi) (Asm.r Reg.r8);
  Asm.halt c;
  Asm.finish c

let ref_modexp () = Ckit.fpow generator secret_exponent

(* Diffie–Hellman: A = g^a, then shared = A'^a for a received public
   value A' (two modexps over the secret exponent). *)
let peer_public = 0x0123456789abcdL

let dh ?(klass = Program.Unr) () =
  let c = Asm.create () in
  let kb = Buffer.create 8 in
  Buffer.add_int64_le kb secret_exponent;
  Asm.data c ~addr:(Int64.of_int key_base) ~secret:true (Buffer.contents kb);
  Asm.bss c ~addr:(Int64.of_int out_base) 16;
  Asm.func c ~klass "dh_agree";
  Asm.mov c Reg.rdi (Asm.i key_base);
  Asm.load c Reg.r13 (Asm.mb Reg.rdi);
  Asm.mov c Reg.rbx (Asm.i64 generator);
  emit_modexp c ~label_prefix:"dh1_";
  Asm.mov c Reg.rsi (Asm.i out_base);
  Asm.store c (Asm.mb Reg.rsi) (Asm.r Reg.r8) (* our public value *);
  Asm.load c Reg.r13 (Asm.mb Reg.rdi);
  Asm.mov c Reg.rbx (Asm.i64 peer_public);
  emit_modexp c ~label_prefix:"dh2_";
  Asm.mov c Reg.rsi (Asm.i out_base);
  Asm.store c (Asm.mbd Reg.rsi 8) (Asm.r Reg.r8) (* shared secret *);
  Asm.halt c;
  Asm.finish c

let ref_dh () = (Ckit.fpow generator secret_exponent, Ckit.fpow peer_public secret_exponent)

(* Elliptic-curve point addition on y^2 = x^3 + 3x + 11 over GF(2^61-1),
   affine coordinates: slope = (y2-y1)/(x2-x1) via a branchy extended-
   Euclid inverse, with the usual special-case branches — repeatedly
   adding a secret point to an accumulator (scalar-multiply by small
   count). *)

let ec_a = 3L

(* Secret input point. *)
let px = 0x0102030405060708L
let py = 0x1a2b3c4d5e6f7a8bL

let adds_default = 6

(* Extended-Euclid inverse of r9 modulo p into r8; branch-heavy (UNR).
   Uses the iterative algorithm with division; clobbers many registers.
   Registers: r = r9, old_r = r10, s = r11, old_s = r12. *)
let emit_inverse c ~label_prefix =
  let l s = label_prefix ^ s in
  Asm.mov c Reg.r10 (Asm.i64 Ckit.p61) (* old_r = p *);
  Asm.mov c Reg.r11 (Asm.i 1) (* s = 1 *);
  Asm.mov c Reg.r12 (Asm.i 0) (* old_s = 0 *);
  Asm.label c (l "inv_loop");
  Asm.test c Reg.r9 (Asm.r Reg.r9);
  Asm.jz c (l "inv_done");
  (* q = old_r / r; (old_r, r) = (r, old_r - q*r); same for s. *)
  Asm.div c Reg.rax Reg.r10 (Asm.r Reg.r9);
  Asm.mov c Reg.rbx (Asm.r Reg.rax);
  Asm.mul c Reg.rbx (Asm.r Reg.r9);
  Asm.mov c Reg.rcx (Asm.r Reg.r10);
  Asm.sub c Reg.rcx (Asm.r Reg.rbx) (* new r *);
  Asm.mov c Reg.r10 (Asm.r Reg.r9);
  Asm.mov c Reg.r9 (Asm.r Reg.rcx);
  (* s update over the integers is fine modulo p afterwards: do it in the
     field: new_s = old_s - q*s (mod p). *)
  Asm.mov c Reg.rdx (Asm.r Reg.rax);
  Asm.and_ c Reg.rdx (Asm.i64 Ckit.p61) (* q mod p; q < p anyway *);
  Ckit.mul61 c ~dst:Reg.rsi ~a:Reg.rdx ~b:Reg.r11 ~t1:Reg.rbx ~t2:Reg.rcx
    ~t3:Reg.rbp;
  Asm.mov c Reg.rdx (Asm.r Reg.r12);
  Asm.add c Reg.rdx (Asm.i64 Ckit.p61);
  Asm.sub c Reg.rdx (Asm.r Reg.rsi);
  Ckit.reduce61 c Reg.rdx ~tmp:Reg.rbp;
  Asm.mov c Reg.r12 (Asm.r Reg.r11);
  Asm.mov c Reg.r11 (Asm.r Reg.rdx);
  Asm.jmp c (l "inv_loop");
  Asm.label c (l "inv_done");
  Asm.mov c Reg.r8 (Asm.r Reg.r12)

(* Point slots in the work area: accumulator (ax, ay, inf flag) and the
   secret point (px, py). *)
let s_ax = 0
let s_ay = 1
let s_ainf = 2
let s_px = 3
let s_py = 4
let s_sx = 5 (* slope *)
let s_t = 6
let s_t2 = 7

let slot i = Asm.mem ~disp:(work_base + (8 * i)) ()

let ecadd ?(adds = adds_default) ?(klass = Program.Unr) () =
  let c = Asm.create () in
  let kb = Buffer.create 16 in
  Buffer.add_int64_le kb px;
  Buffer.add_int64_le kb py;
  Asm.data c ~addr:(Int64.of_int key_base) ~secret:true (Buffer.contents kb);
  Asm.bss c ~addr:(Int64.of_int work_base) (8 * 8);
  Asm.bss c ~addr:(Int64.of_int out_base) 24;
  let fmul_slots ~dst ~a ~b =
    Asm.load c Reg.r8 (slot a);
    Asm.load c Reg.r9 (slot b);
    Ckit.mul61 c ~dst:Reg.r10 ~a:Reg.r8 ~b:Reg.r9 ~t1:Reg.rcx ~t2:Reg.rdx
      ~t3:Reg.rsi;
    Asm.store c (slot dst) (Asm.r Reg.r10)
  in
  let fsub_slots ~dst ~a ~b =
    Asm.load c Reg.r8 (slot a);
    Asm.load c Reg.r9 (slot b);
    Asm.add c Reg.r8 (Asm.i64 Ckit.p61);
    Asm.sub c Reg.r8 (Asm.r Reg.r9);
    Ckit.reduce61 c Reg.r8 ~tmp:Reg.rsi;
    Asm.store c (slot dst) (Asm.r Reg.r8)
  in
  Asm.func c ~klass "ec_point_add";
  (* Load the secret point; accumulator starts at infinity. *)
  Asm.mov c Reg.rdi (Asm.i key_base);
  Asm.load c Reg.rax (Asm.mb Reg.rdi);
  Asm.and_ c Reg.rax (Asm.i64 Ckit.p61);
  Asm.store c (slot s_px) (Asm.r Reg.rax);
  Asm.load c Reg.rax (Asm.mbd Reg.rdi 8);
  Asm.and_ c Reg.rax (Asm.i64 Ckit.p61);
  Asm.store c (slot s_py) (Asm.r Reg.rax);
  Asm.mov c Reg.rax (Asm.i 1);
  Asm.store c (slot s_ainf) (Asm.r Reg.rax);
  Asm.mov c Reg.r15 (Asm.i 0) (* add counter *);
  Asm.label c "add_loop";
  (* if accumulator is infinity: acc = P *)
  Asm.load c Reg.rax (slot s_ainf);
  Asm.test c Reg.rax (Asm.r Reg.rax);
  Asm.jz c "not_inf";
  Asm.load c Reg.rax (slot s_px);
  Asm.store c (slot s_ax) (Asm.r Reg.rax);
  Asm.load c Reg.rax (slot s_py);
  Asm.store c (slot s_ay) (Asm.r Reg.rax);
  Asm.mov c Reg.rax (Asm.i 0);
  Asm.store c (slot s_ainf) (Asm.r Reg.rax);
  Asm.jmp c "next_add";
  Asm.label c "not_inf";
  (* if ax == px (secret-dependent branch): doubling case *)
  Asm.load c Reg.rax (slot s_ax);
  Asm.load c Reg.rbx (slot s_px);
  Asm.cmp c Reg.rax (Asm.r Reg.rbx);
  Asm.jz c "double_case";
  (* slope = (py - ay) / (px - ax) *)
  fsub_slots ~dst:s_t ~a:s_py ~b:s_ay;
  fsub_slots ~dst:s_sx ~a:s_px ~b:s_ax;
  Asm.load c Reg.r9 (slot s_sx);
  emit_inverse c ~label_prefix:"add_";
  Asm.store c (slot s_sx) (Asm.r Reg.r8);
  fmul_slots ~dst:s_sx ~a:s_sx ~b:s_t;
  Asm.jmp c "have_slope";
  Asm.label c "double_case";
  (* slope = (3*ax^2 + a) / (2*ay) *)
  fmul_slots ~dst:s_t ~a:s_ax ~b:s_ax;
  Asm.load c Reg.r8 (slot s_t);
  Asm.mov c Reg.r9 (Asm.i 3);
  Ckit.mul61 c ~dst:Reg.r10 ~a:Reg.r8 ~b:Reg.r9 ~t1:Reg.rcx ~t2:Reg.rdx
    ~t3:Reg.rsi;
  Asm.mov c Reg.rax (Asm.i64 ec_a);
  Asm.add c Reg.r10 (Asm.r Reg.rax);
  Ckit.reduce61 c Reg.r10 ~tmp:Reg.rsi;
  Asm.store c (slot s_t) (Asm.r Reg.r10);
  Asm.load c Reg.r9 (slot s_ay);
  Asm.add c Reg.r9 (Asm.r Reg.r9);
  Ckit.reduce61 c Reg.r9 ~tmp:Reg.rsi;
  emit_inverse c ~label_prefix:"dbl_";
  Asm.store c (slot s_sx) (Asm.r Reg.r8);
  fmul_slots ~dst:s_sx ~a:s_sx ~b:s_t;
  Asm.label c "have_slope";
  (* x3 = s^2 - ax - px; y3 = s*(ax - x3) - ay *)
  fmul_slots ~dst:s_t ~a:s_sx ~b:s_sx;
  fsub_slots ~dst:s_t ~a:s_t ~b:s_ax;
  fsub_slots ~dst:s_t ~a:s_t ~b:s_px (* t = x3 *);
  fsub_slots ~dst:s_t2 ~a:s_ax ~b:s_t (* t2 = ax - x3 *);
  fmul_slots ~dst:s_t2 ~a:s_sx ~b:s_t2 (* t2 = s*(ax - x3) *);
  fsub_slots ~dst:s_t2 ~a:s_t2 ~b:s_ay (* t2 = y3 *);
  Asm.load c Reg.rax (slot s_t);
  Asm.store c (slot s_ax) (Asm.r Reg.rax);
  Asm.load c Reg.rax (slot s_t2);
  Asm.store c (slot s_ay) (Asm.r Reg.rax);
  Asm.label c "next_add";
  Asm.add c Reg.r15 (Asm.i 1);
  Asm.cmp c Reg.r15 (Asm.i adds);
  Asm.jlt c "add_loop";
  (* Output the accumulator. *)
  Asm.mov c Reg.rsi (Asm.i out_base);
  Asm.load c Reg.rax (slot s_ax);
  Asm.store c (Asm.mb Reg.rsi) (Asm.r Reg.rax);
  Asm.load c Reg.rax (slot s_ay);
  Asm.store c (Asm.mbd Reg.rsi 8) (Asm.r Reg.rax);
  Asm.load c Reg.rax (slot s_ainf);
  Asm.store c (Asm.mbd Reg.rsi 16) (Asm.r Reg.rax);
  Asm.halt c;
  Asm.finish c

(* --- OCaml reference -------------------------------------------------- *)

let ref_ecadd ?(adds = adds_default) () =
  let p = Ckit.p61 in
  let fsub a b = Int64.rem (Int64.add (Int64.sub a b) p) p in
  let fadd a b = Int64.rem (Int64.add a b) p in
  let finv a = Ckit.fpow a (Int64.sub p 2L) in
  let pxr = Int64.logand px p and pyr = Int64.logand py p in
  let ax = ref 0L and ay = ref 0L and inf = ref true in
  for _ = 1 to adds do
    if !inf then begin
      ax := pxr;
      ay := pyr;
      inf := false
    end
    else begin
      let s =
        if Int64.equal (Int64.rem !ax p) (Int64.rem pxr p) then
          Ckit.fmul
            (fadd (Ckit.fmul 3L (Ckit.fmul !ax !ax)) ec_a)
            (finv (fadd !ay !ay))
        else Ckit.fmul (fsub pyr !ay) (finv (fsub pxr !ax))
      in
      let x3 = fsub (fsub (Ckit.fmul s s) !ax) pxr in
      let y3 = fsub (Ckit.fmul s (fsub !ax x3)) !ay in
      ax := x3;
      ay := y3
    end
  done;
  (Int64.rem !ax p, Int64.rem !ay p)
