(** SHA-256 compression (FIPS 180-4) over secret message blocks: message
    schedule expansion plus the 64-round loop — a CTS-class kernel. *)

val h_base : int
val msg_base : int
val out_base : int

val make :
  ?blocks:int -> ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t

val ref_digest : int -> string
(** Expected digest bytes at {!out_base} after [blocks] blocks. *)
