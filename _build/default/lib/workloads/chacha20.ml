(* ChaCha20 keystream generation (RFC 8439 block function), written
   directly against the Protean ISA: 32-bit ARX quarter-rounds on a
   16-word state held in memory, with the key words as secret inputs.

   Constant-time: every address and branch is public (the only branches
   are the public round/block counters), so the kernel is both CT and
   statically typeable (CTS).  Variants model the different upstream
   implementations the paper benchmarks: [`Unrolled] (HACL*-style fully
   unrolled double-rounds) and [`Looped] (OpenSSL-style round loop). *)

open Protean_isa

let init_base = 0x2000 (* 16 u32: constants, key, counter, nonce *)
let work_base = 0x2100
let out_base = 0x3000

let key = Array.init 8 (fun i -> Int32.of_int ((i * 0x9e3779b1) lxor 0x12345678))
let nonce = [| 0x09000000l; 0x4a000000l; 0x00000000l |]
let constants = [| 0x61707865l; 0x3320646el; 0x79622d32l; 0x6b206574l |]

let qr_pattern =
  (* Column rounds then diagonal rounds. *)
  [
    (0, 4, 8, 12); (1, 5, 9, 13); (2, 6, 10, 14); (3, 7, 11, 15);
    (0, 5, 10, 15); (1, 6, 11, 12); (2, 7, 8, 13); (3, 4, 9, 14);
  ]

(* One quarter-round on state words (ia,ib,ic,id) held at [work_base]. *)
let emit_qr c (ia, ib, ic, id) =
  let a = Reg.rax and b = Reg.rbx and d = Reg.rdx and cc = Reg.rcx in
  let tmp = Reg.rsi in
  let w i = Asm.mbd Reg.rdi (4 * i) in
  Asm.load c ~w:Insn.W32 a (w ia);
  Asm.load c ~w:Insn.W32 b (w ib);
  Asm.load c ~w:Insn.W32 cc (w ic);
  Asm.load c ~w:Insn.W32 d (w id);
  Asm.add c a (Asm.r b);
  Ckit.mask32 c a;
  Asm.xor c d (Asm.r a);
  Ckit.rotl32 c d ~tmp 16;
  Asm.add c cc (Asm.r d);
  Ckit.mask32 c cc;
  Asm.xor c b (Asm.r cc);
  Ckit.rotl32 c b ~tmp 12;
  Asm.add c a (Asm.r b);
  Ckit.mask32 c a;
  Asm.xor c d (Asm.r a);
  Ckit.rotl32 c d ~tmp 8;
  Asm.add c cc (Asm.r d);
  Ckit.mask32 c cc;
  Asm.xor c b (Asm.r cc);
  Ckit.rotl32 c b ~tmp 7;
  Asm.store c ~w:Insn.W32 (w ia) (Asm.r a);
  Asm.store c ~w:Insn.W32 (w ib) (Asm.r b);
  Asm.store c ~w:Insn.W32 (w ic) (Asm.r cc);
  Asm.store c ~w:Insn.W32 (w id) (Asm.r d)

let emit_double_round c = List.iter (emit_qr c) qr_pattern

let make ?(variant = `Unrolled) ?(blocks = 2) ?(klass = Program.Cts) () =
  let c = Asm.create () in
  (* Initial state: constants and nonce public, key secret. *)
  let b = Buffer.create 64 in
  Array.iter (fun w -> Buffer.add_int32_le b w) constants;
  let init = Buffer.contents b in
  Asm.data c ~addr:(Int64.of_int init_base) init;
  let kb = Buffer.create 32 in
  Array.iter (fun w -> Buffer.add_int32_le kb w) key;
  Asm.data c ~addr:(Int64.of_int (init_base + 16)) ~secret:true (Buffer.contents kb);
  let nb = Buffer.create 16 in
  Buffer.add_int32_le nb 0l (* counter *);
  Array.iter (fun w -> Buffer.add_int32_le nb w) nonce;
  Asm.data c ~addr:(Int64.of_int (init_base + 48)) (Buffer.contents nb);
  Asm.bss c ~addr:(Int64.of_int out_base) (64 * blocks);
  Asm.func c ~klass "chacha20_blocks";
  Asm.mov c Reg.r9 (Asm.i 0) (* block index *);
  Asm.label c "block_loop";
  (* Copy init state to the working area, patching the counter word. *)
  Asm.mov c Reg.rdi (Asm.i init_base);
  Asm.mov c Reg.r8 (Asm.i work_base);
  for i = 0 to 15 do
    Asm.load c ~w:Insn.W32 Reg.rax (Asm.mbd Reg.rdi (4 * i));
    Asm.store c ~w:Insn.W32 (Asm.mbd Reg.r8 (4 * i)) (Asm.r Reg.rax)
  done;
  Asm.store c ~w:Insn.W32 (Asm.mbd Reg.r8 48) (Asm.r Reg.r9) (* counter *);
  Asm.mov c Reg.rdi (Asm.i work_base);
  (match variant with
  | `Unrolled -> for _ = 1 to 10 do emit_double_round c done
  | `Looped ->
      Asm.mov c Reg.r10 (Asm.i 0);
      Asm.label c "round_loop";
      emit_double_round c;
      Asm.add c Reg.r10 (Asm.i 1);
      Asm.cmp c Reg.r10 (Asm.i 10);
      Asm.jlt c "round_loop");
  (* Feed-forward and output. *)
  Asm.mov c Reg.rsi (Asm.i init_base);
  Asm.mov c Reg.r8 (Asm.i out_base);
  Asm.mov c Reg.rax (Asm.r Reg.r9);
  Asm.mul c Reg.rax (Asm.i 64);
  Asm.add c Reg.r8 (Asm.r Reg.rax);
  for i = 0 to 15 do
    Asm.load c ~w:Insn.W32 Reg.rax (Asm.mbd Reg.rdi (4 * i));
    if i = 12 then begin
      (* The counter word feeds forward from the per-block counter. *)
      Asm.add c Reg.rax (Asm.r Reg.r9)
    end
    else begin
      Asm.load c ~w:Insn.W32 Reg.rbx (Asm.mbd Reg.rsi (4 * i));
      Asm.add c Reg.rax (Asm.r Reg.rbx)
    end;
    Ckit.mask32 c Reg.rax;
    Asm.store c ~w:Insn.W32 (Asm.mbd Reg.r8 (4 * i)) (Asm.r Reg.rax)
  done;
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i blocks);
  Asm.jlt c "block_loop";
  Asm.halt c;
  Asm.finish c

(* --- OCaml reference (oracle) ---------------------------------------- *)

let ref_block counter =
  let state = Array.make 16 0l in
  Array.blit constants 0 state 0 4;
  Array.blit key 0 state 4 8;
  state.(12) <- Int32.of_int counter;
  Array.blit nonce 0 state 13 3;
  let w = Array.copy state in
  let ( +% ) a b = Int32.add a b in
  let rotl x k = Int32.logor (Int32.shift_left x k) (Int32.shift_right_logical x (32 - k)) in
  let qr a b c d =
    w.(a) <- w.(a) +% w.(b);
    w.(d) <- rotl (Int32.logxor w.(d) w.(a)) 16;
    w.(c) <- w.(c) +% w.(d);
    w.(b) <- rotl (Int32.logxor w.(b) w.(c)) 12;
    w.(a) <- w.(a) +% w.(b);
    w.(d) <- rotl (Int32.logxor w.(d) w.(a)) 8;
    w.(c) <- w.(c) +% w.(d);
    w.(b) <- rotl (Int32.logxor w.(b) w.(c)) 7
  in
  for _ = 1 to 10 do
    List.iter (fun (a, b, c, d) -> qr a b c d) qr_pattern
  done;
  Array.mapi (fun i x -> x +% state.(i)) w

(* Expected output bytes for [blocks] keystream blocks. *)
let ref_output blocks =
  let b = Buffer.create (64 * blocks) in
  for blk = 0 to blocks - 1 do
    Array.iter (fun w -> Buffer.add_int32_le b w) (ref_block blk)
  done;
  Buffer.contents b
