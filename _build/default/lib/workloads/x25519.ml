(* Curve25519-style X-only Montgomery ladder, over GF(2^61-1)
   (DESIGN.md substitution: the 255-bit field becomes the native-width
   Mersenne field; the code structure is exactly that of a constant-time
   X25519 implementation — a fixed-trip ladder of field
   multiplications/squarings with branchless conditional swaps driven by
   the secret scalar bits). *)

open Protean_isa

let key_base = 0x2000 (* secret scalar *)
let work_base = 0x2100 (* field-element slots *)
let out_base = 0x2300

let scalar = 0x1c44556677881235L
let base_x = 9L
let a24 = 121666L
let bits = 61

(* Field-element slots in the work area. *)
let s_x1 = 0
let s_x2 = 1
let s_z2 = 2
let s_x3 = 3
let s_z3 = 4
let s_a = 5
let s_b = 6
let s_c = 7
let s_d = 8
let s_aa = 9
let s_bb = 10
let s_e = 11
let s_da = 12
let s_cb = 13
let s_t = 14

let slot_mem slot = Asm.mem ~disp:(work_base + (8 * slot)) ()

let emit_ld c reg slot = Asm.load c reg (slot_mem slot)
let emit_st c slot reg = Asm.store c (slot_mem slot) (Asm.r reg)

(* dst_slot = a_slot * b_slot mod p *)
let emit_fmul c ~dst ~a ~b =
  emit_ld c Reg.r8 a;
  emit_ld c Reg.r9 b;
  Ckit.mul61 c ~dst:Reg.r10 ~a:Reg.r8 ~b:Reg.r9 ~t1:Reg.rcx ~t2:Reg.rdx
    ~t3:Reg.rsi;
  emit_st c dst Reg.r10

let emit_fadd c ~dst ~a ~b =
  emit_ld c Reg.r8 a;
  emit_ld c Reg.r9 b;
  Asm.add c Reg.r8 (Asm.r Reg.r9);
  Ckit.reduce61 c Reg.r8 ~tmp:Reg.rsi;
  emit_st c dst Reg.r8

(* dst = a - b mod p, via a + p - b (both operands ≤ p). *)
let emit_fsub c ~dst ~a ~b =
  emit_ld c Reg.r8 a;
  emit_ld c Reg.r9 b;
  Asm.add c Reg.r8 (Asm.i64 Ckit.p61);
  Asm.sub c Reg.r8 (Asm.r Reg.r9);
  Ckit.reduce61 c Reg.r8 ~tmp:Reg.rsi;
  emit_st c dst Reg.r8

(* Branchless conditional swap of two slots under mask register r11. *)
let emit_cswap c sa sb =
  emit_ld c Reg.r8 sa;
  emit_ld c Reg.r9 sb;
  Asm.mov c Reg.r10 (Asm.r Reg.r8);
  Asm.xor c Reg.r10 (Asm.r Reg.r9);
  Asm.and_ c Reg.r10 (Asm.r Reg.r11);
  Asm.xor c Reg.r8 (Asm.r Reg.r10);
  Asm.xor c Reg.r9 (Asm.r Reg.r10);
  emit_st c sa Reg.r8;
  emit_st c sb Reg.r9

let make ?(klass = Program.Cts) () =
  let c = Asm.create () in
  let kb = Buffer.create 8 in
  Buffer.add_int64_le kb scalar;
  Asm.data c ~addr:(Int64.of_int key_base) ~secret:true (Buffer.contents kb);
  Asm.bss c ~addr:(Int64.of_int work_base) (8 * 16);
  Asm.bss c ~addr:(Int64.of_int out_base) 16;
  Asm.func c ~klass "x25519_ladder";
  (* Initialize: x1 = base, x2 = 1, z2 = 0, x3 = base, z3 = 1. *)
  Asm.mov c Reg.rax (Asm.i64 base_x);
  emit_st c s_x1 Reg.rax;
  emit_st c s_x3 Reg.rax;
  Asm.mov c Reg.rax (Asm.i 1);
  emit_st c s_x2 Reg.rax;
  emit_st c s_z3 Reg.rax;
  Asm.mov c Reg.rax (Asm.i 0);
  emit_st c s_z2 Reg.rax;
  (* r13 = scalar (secret), r14 = bit index, r15 = running swap. *)
  Asm.mov c Reg.rdi (Asm.i key_base);
  Asm.load c Reg.r13 (Asm.mb Reg.rdi);
  Asm.mov c Reg.r14 (Asm.i (bits - 1));
  Asm.mov c Reg.r15 (Asm.i 0);
  Asm.label c "ladder";
  (* bit = (k >> t) & 1; swap ^= bit; mask = -swap. *)
  Asm.mov c Reg.rbx (Asm.r Reg.r13);
  Asm.shr c Reg.rbx (Asm.r Reg.r14);
  Asm.and_ c Reg.rbx (Asm.i 1);
  Asm.xor c Reg.r15 (Asm.r Reg.rbx);
  Asm.mov c Reg.r11 (Asm.i 0);
  Asm.sub c Reg.r11 (Asm.r Reg.r15);
  emit_cswap c s_x2 s_x3;
  emit_cswap c s_z2 s_z3;
  Asm.mov c Reg.r15 (Asm.r Reg.rbx);
  (* Ladder step. *)
  emit_fadd c ~dst:s_a ~a:s_x2 ~b:s_z2;
  emit_fmul c ~dst:s_aa ~a:s_a ~b:s_a;
  emit_fsub c ~dst:s_b ~a:s_x2 ~b:s_z2;
  emit_fmul c ~dst:s_bb ~a:s_b ~b:s_b;
  emit_fsub c ~dst:s_e ~a:s_aa ~b:s_bb;
  emit_fadd c ~dst:s_c ~a:s_x3 ~b:s_z3;
  emit_fsub c ~dst:s_d ~a:s_x3 ~b:s_z3;
  emit_fmul c ~dst:s_da ~a:s_d ~b:s_a;
  emit_fmul c ~dst:s_cb ~a:s_c ~b:s_b;
  (* x3 = (DA + CB)^2 *)
  emit_fadd c ~dst:s_t ~a:s_da ~b:s_cb;
  emit_fmul c ~dst:s_x3 ~a:s_t ~b:s_t;
  (* z3 = x1 * (DA - CB)^2 *)
  emit_fsub c ~dst:s_t ~a:s_da ~b:s_cb;
  emit_fmul c ~dst:s_t ~a:s_t ~b:s_t;
  emit_fmul c ~dst:s_z3 ~a:s_x1 ~b:s_t;
  (* x2 = AA * BB *)
  emit_fmul c ~dst:s_x2 ~a:s_aa ~b:s_bb;
  (* z2 = E * (AA + a24 * E) *)
  emit_ld c Reg.r8 s_e;
  Asm.mov c Reg.r9 (Asm.i64 a24);
  Ckit.mul61 c ~dst:Reg.r10 ~a:Reg.r8 ~b:Reg.r9 ~t1:Reg.rcx ~t2:Reg.rdx
    ~t3:Reg.rsi;
  emit_st c s_t Reg.r10;
  emit_fadd c ~dst:s_t ~a:s_aa ~b:s_t;
  emit_fmul c ~dst:s_z2 ~a:s_e ~b:s_t;
  (* Loop. *)
  Asm.sub c Reg.r14 (Asm.i 1);
  Asm.cmp c Reg.r14 (Asm.i 0);
  Asm.jge c "ladder";
  (* Final conditional swap. *)
  Asm.mov c Reg.r11 (Asm.i 0);
  Asm.sub c Reg.r11 (Asm.r Reg.r15);
  emit_cswap c s_x2 s_x3;
  emit_cswap c s_z2 s_z3;
  (* Output x2, z2. *)
  emit_ld c Reg.rax s_x2;
  Asm.store c (Asm.mem ~disp:out_base ()) (Asm.r Reg.rax);
  emit_ld c Reg.rax s_z2;
  Asm.store c (Asm.mem ~disp:(out_base + 8) ()) (Asm.r Reg.rax);
  Asm.halt c;
  Asm.finish c

(* --- OCaml reference -------------------------------------------------- *)

let ref_ladder () =
  let fadd a b = Int64.rem (Int64.add a b) Ckit.p61 in
  let fsub a b = Int64.rem (Int64.add (Int64.sub a b) Ckit.p61) Ckit.p61 in
  let fmul = Ckit.fmul in
  let x1 = base_x in
  let x2 = ref 1L and z2 = ref 0L and x3 = ref base_x and z3 = ref 1L in
  let swap = ref 0L in
  for t = bits - 1 downto 0 do
    let bit = Int64.logand (Int64.shift_right_logical scalar t) 1L in
    swap := Int64.logxor !swap bit;
    if Int64.equal !swap 1L then begin
      let tx = !x2 and tz = !z2 in
      x2 := !x3;
      z2 := !z3;
      x3 := tx;
      z3 := tz
    end;
    swap := bit;
    let a = fadd !x2 !z2 in
    let aa = fmul a a in
    let b = fsub !x2 !z2 in
    let bb = fmul b b in
    let e = fsub aa bb in
    let cc = fadd !x3 !z3 in
    let d = fsub !x3 !z3 in
    let da = fmul d a in
    let cb = fmul cc b in
    x3 := fmul (fadd da cb) (fadd da cb);
    z3 := fmul x1 (fmul (fsub da cb) (fsub da cb));
    x2 := fmul aa bb;
    z2 := fmul e (fadd aa (fmul a24 e))
  done;
  if Int64.equal !swap 1L then begin
    let tx = !x2 and tz = !z2 in
    x2 := !x3;
    z2 := !z3;
    x3 := tx;
    z3 := tz
  end;
  (Int64.rem !x2 Ckit.p61, Int64.rem !z2 Ckit.p61)
