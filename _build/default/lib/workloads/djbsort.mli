(** djbsort-style constant-time sorting: a Batcher odd-even merge network
    over secret values with branchless (cmp + cmov) compare-exchanges. *)

val data_base : int

val batcher : int -> (int * int) list
(** The network: compare-exchange pairs in order, for power-of-two n. *)

val values : int -> int64 array

val make :
  ?n:int -> ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t

val ref_sorted : int -> string
