(** Poly1305-style one-time MAC over GF(2^61-1): the Horner recurrence
    h = (h + m_i) * r with secret key and message — a CTS-class kernel
    (see DESIGN.md for the field-width substitution). *)

val key_base : int
val msg_base : int
val out_base : int
val r_key : int64
val s_key : int64
val message : int -> int64 array

val make :
  ?words:int -> ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t

val ref_tag : int -> int64

val tags_match : int64 -> int -> bool
(** Compare a simulated tag against the reference modulo the field (the
    hardware may hold a non-canonical representative). *)
