(* djbsort-style constant-time sorting: a Batcher odd-even merge sorting
   network over secret 64-bit values, with branchless compare-exchange
   (cmp + cmov) — the same data-independent structure as djbsort's int32
   networks.  All addresses and the network shape are public; only the
   values are secret. *)

open Protean_isa

let data_base = 0x2000
let n_default = 32

(* Batcher odd-even merge sort network for [n] a power of two: the list
   of (i, j) compare-exchange pairs, in order. *)
let batcher n =
  let pairs = ref [] in
  let rec merge lo cnt step =
    if step < cnt then begin
      if step * 2 < cnt then begin
        merge lo cnt (step * 2);
        merge (lo + step) cnt (step * 2);
        let i = ref (lo + step) in
        while !i + step < lo + cnt do
          pairs := (!i, !i + step) :: !pairs;
          i := !i + (2 * step)
        done
      end
      else pairs := (lo, lo + step) :: !pairs
    end
  in
  let rec sort lo cnt =
    if cnt > 1 then begin
      let m = cnt / 2 in
      sort lo m;
      sort (lo + m) m;
      merge lo cnt 1
    end
  in
  sort 0 n;
  List.rev !pairs

let values n = Array.init n (fun i -> Int64.of_int (((i * 0x9e37) lxor 0x7f4a) land 0xffff))

let make ?(n = n_default) ?(klass = Program.Ct) () =
  let c = Asm.create () in
  let vb = Buffer.create (8 * n) in
  Array.iter (fun v -> Buffer.add_int64_le vb v) (values n);
  Asm.data c ~addr:(Int64.of_int data_base) ~secret:true (Buffer.contents vb);
  Asm.func c ~klass "djbsort_network";
  List.iter
    (fun (i, j) ->
      let mi = Asm.mem ~disp:(data_base + (8 * i)) () in
      let mj = Asm.mem ~disp:(data_base + (8 * j)) () in
      Asm.load c Reg.rax mi;
      Asm.load c Reg.rbx mj;
      Asm.mov c Reg.rcx (Asm.r Reg.rax);
      Asm.cmp c Reg.rax (Asm.r Reg.rbx);
      Asm.cmov c Insn.Gt Reg.rcx (Asm.r Reg.rbx) (* min *);
      Asm.mov c Reg.rdx (Asm.r Reg.rbx);
      Asm.cmov c Insn.Gt Reg.rdx (Asm.r Reg.rax) (* max *);
      Asm.store c mi (Asm.r Reg.rcx);
      Asm.store c mj (Asm.r Reg.rdx))
    (batcher n);
  Asm.halt c;
  Asm.finish c

let ref_sorted n =
  let v = values n in
  Array.sort Int64.compare v;
  let b = Buffer.create (8 * n) in
  Array.iter (fun x -> Buffer.add_int64_le b x) v;
  Buffer.contents b
