(* The ARCH-Wasm suite (Section VIII-B2): sandboxed WebAssembly-style
   kernels, one per SPEC CPU2006 benchmark the paper compiles to Wasm.
   Every memory access is masked into a linear-memory region (the wasm2c
   sandboxing pattern), and the code never accesses secrets — the
   non-secret-accessing (ARCH) class.

   The kernels are deliberately indirection-heavy: loaded values feed
   load addresses and branch conditions, with working sets larger than
   the L1D.  On the unsafe baseline this gives memory-level parallelism
   across iterations; STT unconditionally taints every load output and
   so stalls each dependent transmitter until its producer retires,
   destroying that parallelism (the Section IX-B1 analysis of milc).
   PROTEAN only stalls the fraction of dependencies that read
   protected bytes in the protection-tagged L1D — lines already touched
   while resident are unprotected — recovering most of the speed. *)

open Protean_isa

let lin_base = 0x10000
let lin_size = 32 * 1024
    (* L1D-resident once touched: the protection-tagged L1D can retain
       unprotected status across passes *)
let lin_mask = lin_size - 1
let out_base = 0x8000

let seed_data () =
  String.init lin_size (fun i ->
      Char.chr ((i * 2654435761 + (i lsr 7)) land 0xff))

let prologue () =
  let c = Asm.create () in
  Asm.data c ~addr:(Int64.of_int lin_base) (seed_data ());
  Asm.bss c ~addr:(Int64.of_int out_base) 64;
  c

let finish_with c reg =
  Asm.store c (Asm.mem ~disp:out_base ()) (Asm.r reg);
  Asm.halt c;
  Asm.finish c

(* Masked (sandboxed) address into a scratch register. *)
let sandbox c ~into idx =
  Asm.mov c into (Asm.r idx);
  Asm.and_ c into (Asm.i lin_mask);
  Asm.add c into (Asm.i lin_base)

(* bzip2: byte histogram (loaded byte indexes the counter store) with a
   branchless run counter and several passes over the buffer. *)
let bzip2 ?(n = 4096) ?(passes = 4) () =
  let c = prologue () in
  Asm.bss c ~addr:0x9000L (256 * 8);
  Asm.func c ~klass:Program.Arch "bzip2_kernel";
  Asm.mov c Reg.r9 (Asm.i 0) (* pass *);
  Asm.mov c Reg.rdx (Asm.i 0) (* runs *);
  Asm.label c "pass";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "scan";
  (* histogram: load byte -> load counter -> store counter *)
  Asm.mov c Reg.rbp (Asm.r Reg.rcx);
  Asm.mul c Reg.rbp (Asm.i 7);
  Asm.and_ c Reg.rbp (Asm.i lin_mask);
  Asm.add c Reg.rbp (Asm.i lin_base);
  Asm.load c ~w:Insn.W8 Reg.rax (Asm.mb Reg.rbp);
  Asm.load c Reg.rbx { Insn.base = None; index = Some Reg.rax; scale = 8; disp = 0x9000 };
  Asm.add c Reg.rbx (Asm.i 1);
  Asm.store c { Insn.base = None; index = Some Reg.rax; scale = 8; disp = 0x9000 } (Asm.r Reg.rbx);
  (* branchless run counting *)
  Asm.mov c Reg.rsi (Asm.r Reg.rdx);
  Asm.add c Reg.rsi (Asm.i 1);
  Asm.test c Reg.rax (Asm.i 3);
  Asm.cmov c Insn.Z Reg.rdx (Asm.r Reg.rsi);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i n);
  Asm.jlt c "scan";
  Asm.mark_measurement c;
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i passes);
  Asm.jlt c "pass";
  finish_with c Reg.rdx

(* mcf: four interleaved pointer chases over an L2-resident node table.
   The unsafe core overlaps misses across chains and iterations; STT
   forces every link to wait for its producer to retire, collapsing the
   memory-level parallelism.  Because the table does not fit in the L1D,
   evictions also erase protection state, making this the suite's worst
   case for PROTEAN (as in the paper's Table V, where mcf has the
   highest PROTEAN-Track overhead of the Wasm suite). *)
let mcf ?(nodes = 8192) ?(steps = 16384) () =
  let c = prologue () in
  let table_base = lin_base + lin_size (* separate 128 KiB node table *) in
  Asm.bss c ~addr:(Int64.of_int table_base) (nodes * 16);
  Asm.func c ~klass:Program.Arch "mcf_kernel";
  (* build links: node k at table + 16k -> next = perm(k) *)
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "build";
  Asm.mov c Reg.rax (Asm.r Reg.rcx);
  Asm.mul c Reg.rax (Asm.i 3121) (* odd multiplier: a permutation *);
  Asm.add c Reg.rax (Asm.i 1);
  Asm.and_ c Reg.rax (Asm.i (nodes - 1));
  Asm.mov c Reg.rbp (Asm.r Reg.rcx);
  Asm.mul c Reg.rbp (Asm.i 16);
  Asm.add c Reg.rbp (Asm.i table_base);
  Asm.store c (Asm.mb Reg.rbp) (Asm.r Reg.rax);
  Asm.store c (Asm.mbd Reg.rbp 8) (Asm.r Reg.rcx);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i nodes);
  Asm.jlt c "build";
  Asm.mark_measurement c;
  (* four chases in lockstep: cur in rdi/r8/r9/r10 *)
  Asm.mov c Reg.rdi (Asm.i 0);
  Asm.mov c Reg.r8 (Asm.i 1);
  Asm.mov c Reg.r9 (Asm.i 2);
  Asm.mov c Reg.r10 (Asm.i 3);
  Asm.mov c Reg.rdx (Asm.i 0) (* total *);
  Asm.mov c Reg.r11 (Asm.i 0) (* step *);
  Asm.label c "chase";
  let link cur =
    Asm.mov c Reg.rbp (Asm.r cur);
    Asm.mul c Reg.rbp (Asm.i 16);
    Asm.add c Reg.rbp (Asm.i table_base);
    Asm.load c Reg.rbx (Asm.mbd Reg.rbp 8);
    Asm.add c Reg.rdx (Asm.r Reg.rbx);
    Asm.load c cur (Asm.mb Reg.rbp)
  in
  link Reg.rdi;
  link Reg.r8;
  link Reg.r9;
  link Reg.r10;
  Asm.add c Reg.r11 (Asm.i 1);
  Asm.cmp c Reg.r11 (Asm.i (steps / 4));
  Asm.jlt c "chase";
  finish_with c Reg.rdx

(* milc: the gather pattern of the paper's analysis — an index array
   feeding dependent lattice loads, iterations independent, several
   sweeps over the lattice. *)
let milc ?(n = 2048) ?(passes = 4) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "milc_kernel";
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.mov c Reg.rdx (Asm.i 0) (* acc *);
  Asm.label c "sweep";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "site";
  (* idx = A[i] (sequential half of memory) *)
  Asm.mov c Reg.rbp (Asm.r Reg.rcx);
  Asm.mul c Reg.rbp (Asm.i 8);
  Asm.and_ c Reg.rbp (Asm.i (lin_size / 2 - 1));
  Asm.add c Reg.rbp (Asm.i lin_base);
  Asm.load c Reg.rax (Asm.mb Reg.rbp);
  (* val = B[idx & mask] (gather into the other half) *)
  Asm.and_ c Reg.rax (Asm.i (lin_size / 2 - 8));
  Asm.add c Reg.rax (Asm.i (lin_base + (lin_size / 2)));
  Asm.load c Reg.rbx (Asm.mb Reg.rax);
  Asm.add c Reg.rdx (Asm.r Reg.rbx);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i n);
  Asm.jlt c "site";
  Asm.mark_measurement c;
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i passes);
  Asm.jlt c "sweep";
  finish_with c Reg.rdx

(* namd: force table lookups — arithmetic producing a table index. *)
let namd ?(pairs = 2048) ?(passes = 4) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "namd_kernel";
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.mov c Reg.r8 (Asm.i 0);
  Asm.label c "npass";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "pair";
  (* dist2 = f(i); force = table[dist2 & mask]; acc += force * dist2 *)
  Asm.mov c Reg.rax (Asm.r Reg.rcx);
  Asm.mul c Reg.rax (Asm.i 37);
  Asm.add c Reg.rax (Asm.i 11);
  Asm.mov c Reg.rbx (Asm.r Reg.rax);
  Asm.mul c Reg.rbx (Asm.r Reg.rax);
  Asm.mov c Reg.rbp (Asm.r Reg.rbx);
  Asm.and_ c Reg.rbp (Asm.i (lin_mask - 7));
  Asm.add c Reg.rbp (Asm.i lin_base);
  Asm.load c Reg.rsi (Asm.mb Reg.rbp);
  (* second-level lookup: the loaded force indexes a correction table *)
  Asm.and_ c Reg.rsi (Asm.i (lin_mask - 7));
  Asm.add c Reg.rsi (Asm.i lin_base);
  Asm.load c Reg.rdi (Asm.mb Reg.rsi);
  Asm.add c Reg.r8 (Asm.r Reg.rdi);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i pairs);
  Asm.jlt c "pair";
  Asm.mark_measurement c;
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i passes);
  Asm.jlt c "npass";
  finish_with c Reg.r8

(* libquantum: gate sweeps applying a branchless controlled flip to
   amplitudes addressed through a permutation table — loaded indices
   feed load/store addresses. *)
let libquantum ?(amps = 2048) ?(gates = 6) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "libquantum_kernel";
  Asm.mov c Reg.r9 (Asm.i 0) (* gate *);
  Asm.mov c Reg.r8 (Asm.i 0) (* checksum *);
  Asm.label c "gate";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "amp";
  (* idx = perm[i] from the first half *)
  Asm.mov c Reg.rbp (Asm.r Reg.rcx);
  Asm.mul c Reg.rbp (Asm.i 8);
  Asm.and_ c Reg.rbp (Asm.i (lin_size / 2 - 1));
  Asm.add c Reg.rbp (Asm.i lin_base);
  Asm.load c Reg.rax (Asm.mb Reg.rbp);
  (* amplitude at table[idx & mask] in the second half *)
  Asm.and_ c Reg.rax (Asm.i (lin_size / 2 - 8));
  Asm.add c Reg.rax (Asm.i (lin_base + (lin_size / 2)));
  Asm.load c Reg.rbx (Asm.mb Reg.rax);
  (* control bit selects the flip, branchless *)
  Asm.mov c Reg.rsi (Asm.r Reg.rbx);
  Asm.xor c Reg.rsi (Asm.i 32);
  Asm.mov c Reg.rdi (Asm.r Reg.rbx);
  Asm.shr c Reg.rdi (Asm.r Reg.r9);
  Asm.test c Reg.rdi (Asm.i 1);
  Asm.cmov c Insn.Nz Reg.rbx (Asm.r Reg.rsi);
  Asm.store c (Asm.mb Reg.rax) (Asm.r Reg.rbx);
  Asm.add c Reg.r8 (Asm.r Reg.rbx);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i amps);
  Asm.jlt c "amp";
  Asm.mark_measurement c;
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i gates);
  Asm.jlt c "gate";
  finish_with c Reg.r8

(* lbm: neighbour-index streaming update (gather stencil). *)
let lbm ?(cells = 2048) ?(steps = 6) () =
  let c = prologue () in
  Asm.func c ~klass:Program.Arch "lbm_kernel";
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.label c "step";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "cell";
  (* neighbour index loaded from the first half *)
  Asm.mov c Reg.rbp (Asm.r Reg.rcx);
  Asm.mul c Reg.rbp (Asm.i 8);
  Asm.and_ c Reg.rbp (Asm.i (lin_size / 2 - 1));
  Asm.add c Reg.rbp (Asm.i lin_base);
  Asm.load c Reg.rax (Asm.mb Reg.rbp);
  Asm.and_ c Reg.rax (Asm.i (lin_size / 2 - 8));
  Asm.add c Reg.rax (Asm.i (lin_base + (lin_size / 2)));
  Asm.load c Reg.rbx (Asm.mb Reg.rax);
  Asm.load c Reg.rdx (Asm.mbd Reg.rbp 8);
  Asm.add c Reg.rbx (Asm.r Reg.rdx);
  Asm.sar c Reg.rbx (Asm.i 1);
  Asm.store c (Asm.mbd Reg.rbp 8) (Asm.r Reg.rbx);
  Asm.add c Reg.rcx (Asm.i 2);
  Asm.cmp c Reg.rcx (Asm.i cells);
  Asm.jlt c "cell";
  Asm.mark_measurement c;
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i steps);
  Asm.jlt c "step";
  finish_with c Reg.rbx

let all =
  [
    ("bzip2", fun () -> bzip2 ());
    ("mcf", fun () -> mcf ());
    ("milc", fun () -> milc ());
    ("namd", fun () -> namd ());
    ("libquantum", fun () -> libquantum ());
    ("lbm", fun () -> lbm ());
  ]
