(** The UNR-Crypto suite (Section VIII-B2): cryptographic routines that
    are *not* constant-time — they branch on and index by secret data, so
    only SPT-SB or PROTEAN with ProtCC-UNR fully secure them. *)

val key_base : int
val out_base : int
val secret_exponent : int64
val generator : int64

val modexp :
  ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t
(** Square-and-multiply with a branch per secret exponent bit (the
    non-constant-time `BN_mod_exp` pattern). *)

val ref_modexp : unit -> int64

val dh : ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t
(** Diffie–Hellman agreement: two modexps over the secret exponent. *)

val ref_dh : unit -> int64 * int64

val ecadd :
  ?adds:int -> ?klass:Protean_isa.Program.klass -> unit -> Protean_isa.Program.t
(** Repeated affine EC point addition with branchy special cases and a
    non-constant-time extended-Euclid inverse (`EC_POINT_add`). *)

val ref_ecadd : ?adds:int -> unit -> int64 * int64
