(* SPECK-128/128 block encryption (Beaulieu et al., the NSA lightweight
   ARX cipher) — the CT-class block-cipher kernel standing in for the
   bitsliced `ctaes` benchmark (DESIGN.md substitution: both are
   branchless constant-time block ciphers; SPECK's ARX structure maps
   directly onto our ISA).  Key schedule and encryption are computed
   in-simulation with the key as secret input. *)

open Protean_isa

let key_base = 0x2000 (* 2 x u64, secret *)
let rk_base = 0x2100 (* 32 round keys *)
let msg_base = 0x2300 (* plaintext blocks, secret *)
let out_base = 0x2500

let rounds = 32
let key = (0x0f0e0d0c0b0a0908L, 0x0706050403020100L)

let plaintext blocks =
  Array.init (2 * blocks) (fun i -> Int64.of_int ((i * 0x6c61) lxor 0x2074))

(* One SPECK round on registers (x, y) with round key in [k]:
   x = (rotr x 8 + y) ^ k; y = rotl y 3 ^ x. *)
let emit_round c ~x ~y ~k ~tmp =
  Ckit.rotr64 c x ~tmp 8;
  Asm.add c x (Asm.r y);
  Asm.xor c x (Asm.r k);
  Ckit.rotl64 c y ~tmp 3;
  Asm.xor c y (Asm.r x)

let make ?(blocks = 8) ?(klass = Program.Ct) () =
  let c = Asm.create () in
  let kb = Buffer.create 16 in
  let k1, k0 = key in
  Buffer.add_int64_le kb k0;
  Buffer.add_int64_le kb k1;
  Asm.data c ~addr:(Int64.of_int key_base) ~secret:true (Buffer.contents kb);
  let pb = Buffer.create (16 * blocks) in
  Array.iter (fun w -> Buffer.add_int64_le pb w) (plaintext blocks);
  Asm.data c ~addr:(Int64.of_int msg_base) ~secret:true (Buffer.contents pb);
  Asm.bss c ~addr:(Int64.of_int rk_base) (8 * rounds);
  Asm.bss c ~addr:(Int64.of_int out_base) (16 * blocks);
  Asm.func c ~klass "speck_encrypt";
  (* Key schedule: a = k0, b = k1; rk[i] = a; (b,a) = round(b,a) with i. *)
  Asm.mov c Reg.rdi (Asm.i key_base);
  Asm.load c Reg.rax (Asm.mb Reg.rdi) (* a *);
  Asm.load c Reg.rbx (Asm.mbd Reg.rdi 8) (* b *);
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "ks_loop";
  Asm.store c
    { Insn.base = None; index = Some Reg.rcx; scale = 8; disp = rk_base }
    (Asm.r Reg.rax);
  emit_round c ~x:Reg.rbx ~y:Reg.rax ~k:Reg.rcx ~tmp:Reg.rsi;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i (rounds - 1));
  Asm.jle c "ks_loop";
  (* Encrypt each block. *)
  Asm.mov c Reg.r9 (Asm.i 0) (* block index *);
  Asm.label c "blk_loop";
  Asm.mov c Reg.rdi (Asm.r Reg.r9);
  Asm.mul c Reg.rdi (Asm.i 16);
  Asm.mov c Reg.r10 (Asm.r Reg.rdi);
  Asm.add c Reg.rdi (Asm.i msg_base);
  Asm.add c Reg.r10 (Asm.i out_base);
  Asm.load c Reg.rdx (Asm.mb Reg.rdi) (* y *);
  Asm.load c Reg.rcx (Asm.mbd Reg.rdi 8) (* x *);
  Asm.mov c Reg.r11 (Asm.i 0);
  Asm.label c "enc_loop";
  Asm.load c Reg.r8
    { Insn.base = None; index = Some Reg.r11; scale = 8; disp = rk_base };
  emit_round c ~x:Reg.rcx ~y:Reg.rdx ~k:Reg.r8 ~tmp:Reg.rsi;
  Asm.add c Reg.r11 (Asm.i 1);
  Asm.cmp c Reg.r11 (Asm.i rounds);
  Asm.jlt c "enc_loop";
  Asm.store c (Asm.mb Reg.r10) (Asm.r Reg.rdx);
  Asm.store c (Asm.mbd Reg.r10 8) (Asm.r Reg.rcx);
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i blocks);
  Asm.jlt c "blk_loop";
  Asm.halt c;
  Asm.finish c

(* --- OCaml reference -------------------------------------------------- *)

let rotr x k = Int64.logor (Int64.shift_right_logical x k) (Int64.shift_left x (64 - k))
let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let ref_round (x, y) k =
  let x = Int64.logxor (Int64.add (rotr x 8) y) k in
  let y = Int64.logxor (rotl y 3) x in
  (x, y)

let ref_encrypt blocks =
  let k1, k0 = key in
  let rk = Array.make rounds 0L in
  let a = ref k0 and b = ref k1 in
  for i = 0 to rounds - 1 do
    rk.(i) <- !a;
    let b', a' = ref_round (!b, !a) (Int64.of_int i) in
    b := b';
    a := a'
  done;
  let pt = plaintext blocks in
  let out = Buffer.create (16 * blocks) in
  for blk = 0 to blocks - 1 do
    let y = ref pt.(2 * blk) and x = ref pt.((2 * blk) + 1) in
    for i = 0 to rounds - 1 do
      let x', y' = ref_round (!x, !y) rk.(i) in
      x := x';
      y := y'
    done;
    Buffer.add_int64_le out !y;
    Buffer.add_int64_le out !x
  done;
  Buffer.contents out
