(* Emission helpers shared by the crypto kernels: 32-bit arithmetic in
   64-bit registers, rotations, and field arithmetic modulo the Mersenne
   prime 2^61 - 1 (the narrower stand-in field documented in DESIGN.md:
   same code structure as the 255-bit originals — multiply, square,
   shift-based reduction, branchless conditional swaps — at a width our
   ISA handles natively). *)

open Protean_isa

let m32 = 0xffffffffL

(* 2^61 - 1: a Mersenne prime, so reduction is shift-and-add. *)
let p61 = Int64.sub (Int64.shift_left 1L 61) 1L

let mask32 c r = Asm.and_ c r (Asm.i64 m32)

(* dst = rotl32(dst, k), clobbers tmp. *)
let rotl32 c dst ~tmp k =
  Asm.mov c tmp (Asm.r dst);
  Asm.shl c dst (Asm.i k);
  Asm.shr c tmp (Asm.i (32 - k));
  Asm.or_ c dst (Asm.r tmp);
  mask32 c dst

(* dst = rotl64(dst, k), clobbers tmp. *)
let rotl64 c dst ~tmp k =
  Asm.mov c tmp (Asm.r dst);
  Asm.shl c dst (Asm.i k);
  Asm.shr c tmp (Asm.i (64 - k));
  Asm.or_ c dst (Asm.r tmp)

(* dst = rotr64(dst, k), clobbers tmp. *)
let rotr64 c dst ~tmp k =
  Asm.mov c tmp (Asm.r dst);
  Asm.shr c dst (Asm.i k);
  Asm.shl c tmp (Asm.i (64 - k));
  Asm.or_ c dst (Asm.r tmp)

let rotr32 c dst ~tmp k = rotl32 c dst ~tmp (32 - k)

(* Reduce dst modulo 2^61-1 (dst < 2^62 expected): branchless
   fold-and-conditionally-subtract. *)
let reduce61 c dst ~tmp =
  Asm.mov c tmp (Asm.r dst);
  Asm.shr c tmp (Asm.i 61);
  Asm.and_ c dst (Asm.i64 p61);
  Asm.add c dst (Asm.r tmp);
  (* One more fold in case of wrap. *)
  Asm.mov c tmp (Asm.r dst);
  Asm.shr c tmp (Asm.i 61);
  Asm.and_ c dst (Asm.i64 p61);
  Asm.add c dst (Asm.r tmp)

(* Field multiplication dst = (a * b) mod (2^61-1), using 30/31-bit limb
   products so nothing overflows 64 bits: a = a1*2^31 + a0, b = b1*2^31 + b0,
   and 2^62 ≡ 2 (mod p).  Clobbers t1 t2 t3; dst must differ from a, b. *)
let mul61 c ~dst ~a ~b ~t1 ~t2 ~t3 =
  (* t1 = a0*b0 (31+31 bits -> 62 bits, safe) *)
  Asm.mov c t1 (Asm.r a);
  Asm.and_ c t1 (Asm.i64 0x7fffffffL);
  Asm.mov c t2 (Asm.r b);
  Asm.and_ c t2 (Asm.i64 0x7fffffffL);
  Asm.mov c dst (Asm.r t1);
  Asm.mul c dst (Asm.r t2);
  (* cross terms: (a1*b0 + a0*b1) * 2^31 — accumulate with folding *)
  Asm.mov c t3 (Asm.r a);
  Asm.shr c t3 (Asm.i 31);
  Asm.mul c t3 (Asm.r t2) (* a1*b0, ≤ 61 bits *);
  (* dst += (t3 << 31) mod p: split t3 = hi*2^30 + lo *)
  Asm.mov c t2 (Asm.r t3);
  Asm.shr c t2 (Asm.i 30);
  Asm.and_ c t3 (Asm.i64 0x3fffffffL);
  Asm.shl c t3 (Asm.i 31);
  Asm.add c dst (Asm.r t3);
  reduce61 c dst ~tmp:t3;
  Asm.add c dst (Asm.r t2) (* hi*2^61 ≡ hi *);
  reduce61 c dst ~tmp:t3;
  (* a0*b1 *)
  Asm.mov c t1 (Asm.r a);
  Asm.and_ c t1 (Asm.i64 0x7fffffffL);
  Asm.mov c t3 (Asm.r b);
  Asm.shr c t3 (Asm.i 31);
  Asm.mul c t3 (Asm.r t1);
  Asm.mov c t2 (Asm.r t3);
  Asm.shr c t2 (Asm.i 30);
  Asm.and_ c t3 (Asm.i64 0x3fffffffL);
  Asm.shl c t3 (Asm.i 31);
  Asm.add c dst (Asm.r t3);
  reduce61 c dst ~tmp:t3;
  Asm.add c dst (Asm.r t2);
  reduce61 c dst ~tmp:t3;
  (* a1*b1 * 2^62 ≡ 2*a1*b1 *)
  Asm.mov c t1 (Asm.r a);
  Asm.shr c t1 (Asm.i 31);
  Asm.mov c t3 (Asm.r b);
  Asm.shr c t3 (Asm.i 31);
  Asm.mul c t1 (Asm.r t3) (* ≤ 60 bits *);
  Asm.shl c t1 (Asm.i 1);
  Asm.add c dst (Asm.r t1);
  reduce61 c dst ~tmp:t3

(* Reference field arithmetic in OCaml, for oracles and constants. *)
let fadd a b = Int64.rem (Int64.add a b) p61

let fmul a b =
  (* Exact via splitting into 31-bit halves, mirroring [mul61]. *)
  let lo31 x = Int64.logand x 0x7fffffffL in
  let hi x = Int64.shift_right_logical x 31 in
  let fold x =
    let r =
      Int64.add (Int64.logand x p61) (Int64.shift_right_logical x 61)
    in
    if Int64.unsigned_compare r p61 >= 0 then Int64.sub r p61 else r
  in
  let shl31_mod x =
    (* (x * 2^31) mod p *)
    let hi30 = Int64.shift_right_logical x 30 in
    let lo = Int64.logand x 0x3fffffffL in
    fold (Int64.add (Int64.shift_left lo 31) hi30)
  in
  let a0 = lo31 a and a1 = hi a and b0 = lo31 b and b1 = hi b in
  let r = fold (Int64.mul a0 b0) in
  let r = fold (Int64.add r (shl31_mod (Int64.mul a1 b0))) in
  let r = fold (Int64.add r (shl31_mod (Int64.mul a0 b1))) in
  fold (Int64.add r (fold (Int64.shift_left (Int64.mul a1 b1) 1)))

let fpow b e =
  let rec go acc b e =
    if Int64.equal e 0L then acc
    else
      let acc = if Int64.logand e 1L = 1L then fmul acc b else acc in
      go acc (fmul b b) (Int64.shift_right_logical e 1)
  in
  go 1L (Int64.rem b p61) e
