(* The PARSEC-style multi-thread suite (DESIGN.md substitution): each
   benchmark is an array of per-thread programs run in lockstep on the
   full multicore configuration with a shared L3; threads partition
   disjoint data (runtime = the slowest thread).

   blackscholes and swaptions are deliberately stack-heavy — lots of
   fixed-offset [rsp+k] temporaries, push/pop-saved registers and
   divisions — because that is what drives the paper's SPT-SB vs
   PROTEAN-UNR gap (Section IX-A1: all top transmitters stalled by SPT-SB
   on blackscholes are fixed-offset stack accesses, which ProtCC-UNR
   avoids stalling by unprotecting the stack pointer). *)

open Protean_isa

let data_base = 0x10000
let out_base = 0x8000

let thread_prologue tid =
  let c = Asm.create () in
  Asm.data c
    ~addr:(Int64.of_int data_base)
    (String.init 8192 (fun i -> Char.chr ((i * 59 + (tid * 7)) land 0xff)));
  Asm.bss c ~addr:(Int64.of_int out_base) 64;
  c

let finish_with c reg =
  Asm.store c (Asm.mem ~disp:out_base ()) (Asm.r reg);
  Asm.halt c;
  Asm.finish c

(* bs_price(rdi=spot) -> rax: a rational CND-style approximation with
   stack temporaries (fixed-offset stack traffic). *)
let blackscholes_price c =
  Asm.func c ~klass:Program.Unr "bs_price";
  Asm.push c (Asm.r Reg.rbx);
  Asm.push c (Asm.r Reg.r12);
  Asm.sub c Reg.rsp (Asm.i 48);
  (* d1 = (spot * 181 + 1000) / (spot + 13) *)
  Asm.mov c Reg.rax (Asm.r Reg.rdi);
  Asm.mul c Reg.rax (Asm.i 181);
  Asm.add c Reg.rax (Asm.i 1000);
  Asm.mov c Reg.rbx (Asm.r Reg.rdi);
  Asm.add c Reg.rbx (Asm.i 13);
  Asm.div c Reg.r12 Reg.rax (Asm.r Reg.rbx);
  Asm.store c (Asm.mbd Reg.rsp 0) (Asm.r Reg.r12);
  (* polynomial in d1 with stack-held coefficients *)
  Asm.mov c Reg.rax (Asm.r Reg.r12);
  Asm.mul c Reg.rax (Asm.r Reg.r12);
  Asm.store c (Asm.mbd Reg.rsp 8) (Asm.r Reg.rax);
  Asm.mul c Reg.rax (Asm.r Reg.r12);
  Asm.store c (Asm.mbd Reg.rsp 16) (Asm.r Reg.rax);
  Asm.load c Reg.rbx (Asm.mbd Reg.rsp 0);
  Asm.mul c Reg.rbx (Asm.i 319);
  Asm.load c Reg.rax (Asm.mbd Reg.rsp 8);
  Asm.mul c Reg.rax (Asm.i 356);
  Asm.sub c Reg.rbx (Asm.r Reg.rax);
  Asm.load c Reg.rax (Asm.mbd Reg.rsp 16);
  Asm.mul c Reg.rax (Asm.i 178);
  Asm.add c Reg.rbx (Asm.r Reg.rax);
  Asm.store c (Asm.mbd Reg.rsp 24) (Asm.r Reg.rbx);
  (* normalize *)
  Asm.load c Reg.rax (Asm.mbd Reg.rsp 24);
  Asm.mov c Reg.rbx (Asm.r Reg.rdi);
  Asm.or_ c Reg.rbx (Asm.i 7);
  Asm.div c Reg.rax Reg.rax (Asm.r Reg.rbx);
  Asm.and_ c Reg.rax (Asm.i64 0xffffffL);
  Asm.add c Reg.rsp (Asm.i 48);
  Asm.pop c Reg.r12;
  Asm.pop c Reg.rbx;
  Asm.ret c

(* canneal: random element swaps with cost evaluation (scattered loads,
   data-dependent accept/reject branch). *)
let canneal ?(moves = 384) tid =
  let c = thread_prologue tid in
  Asm.func c ~klass:Program.Unr "canneal_main";
  Asm.mov c Reg.r13 (Asm.i (88172645 + tid)) (* rng *);
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.mov c Reg.r8 (Asm.i 0) (* accepted *);
  Asm.label c "move";
  Asm.mov c Reg.rax (Asm.r Reg.r13);
  Asm.shl c Reg.rax (Asm.i 13);
  Asm.xor c Reg.r13 (Asm.r Reg.rax);
  Asm.mov c Reg.rax (Asm.r Reg.r13);
  Asm.shr c Reg.rax (Asm.i 7);
  Asm.xor c Reg.r13 (Asm.r Reg.rax);
  Asm.mov c Reg.rsi (Asm.r Reg.r13);
  Asm.and_ c Reg.rsi (Asm.i 1015);
  Asm.load c Reg.rax (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:data_base ());
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base + 64) ());
  Asm.cmp c Reg.rax (Asm.r Reg.rbx);
  Asm.jle c "reject";
  (* swap *)
  Asm.store c (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:data_base ()) (Asm.r Reg.rbx);
  Asm.store c (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base + 64) ()) (Asm.r Reg.rax);
  Asm.add c Reg.r8 (Asm.i 1);
  Asm.label c "reject";
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i moves);
  Asm.jlt c "move";
  finish_with c Reg.r8

(* dedup: rolling-hash chunking plus duplicate lookups. *)
let dedup ?(n = 2048) tid =
  let c = thread_prologue tid in
  Asm.bss c ~addr:0x30000L (1024 * 8);
  Asm.func c ~klass:Program.Unr "dedup_main";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.mov c Reg.r8 (Asm.i 0) (* rolling hash *);
  Asm.mov c Reg.r9 (Asm.i 0) (* chunks *);
  Asm.label c "byte";
  Asm.mov c Reg.rsi (Asm.r Reg.rcx);
  Asm.and_ c Reg.rsi (Asm.i 8191);
  Asm.load c ~w:Insn.W8 Reg.rax (Asm.mem ~index:Reg.rsi ~disp:data_base ());
  Asm.mul c Reg.r8 (Asm.i 31);
  Asm.add c Reg.r8 (Asm.r Reg.rax);
  Asm.and_ c Reg.r8 (Asm.i64 0xffffffffL);
  (* chunk boundary when low bits zero *)
  Asm.mov c Reg.rbx (Asm.r Reg.r8);
  Asm.and_ c Reg.rbx (Asm.i 63);
  Asm.test c Reg.rbx (Asm.r Reg.rbx);
  Asm.jnz c "no_boundary";
  (* dedup table probe *)
  Asm.mov c Reg.rsi (Asm.r Reg.r8);
  Asm.shr c Reg.rsi (Asm.i 6);
  Asm.and_ c Reg.rsi (Asm.i 1023);
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:0x30000 ());
  Asm.cmp c Reg.rbx (Asm.r Reg.r8);
  Asm.jz c "dup";
  Asm.store c (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:0x30000 ()) (Asm.r Reg.r8);
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.label c "dup";
  Asm.label c "no_boundary";
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i n);
  Asm.jlt c "byte";
  finish_with c Reg.r9

(* ferret: L2-distance ranking of feature vectors. *)
let ferret ?(queries = 24) ?(veclen = 16) ?(corpus = 24) tid =
  let c = thread_prologue tid in
  Asm.func c ~klass:Program.Unr "ferret_main";
  Asm.mov c Reg.rcx (Asm.i 0) (* query *);
  Asm.mov c Reg.r8 (Asm.i 0) (* best-distance accumulator *);
  Asm.label c "query";
  Asm.mov c Reg.rdx (Asm.i 0) (* candidate *);
  Asm.mov c Reg.r10 (Asm.i64 0x7fffffffL) (* best *);
  Asm.label c "cand";
  Asm.mov c Reg.r9 (Asm.i 0) (* dist *);
  Asm.mov c Reg.rsi (Asm.i 0) (* component *);
  Asm.label c "comp";
  Asm.mov c Reg.rax (Asm.r Reg.rcx);
  Asm.mul c Reg.rax (Asm.i veclen);
  Asm.add c Reg.rax (Asm.r Reg.rsi);
  Asm.and_ c Reg.rax (Asm.i 1023);
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rax ~scale:8 ~disp:data_base ());
  Asm.mov c Reg.rax (Asm.r Reg.rdx);
  Asm.mul c Reg.rax (Asm.i veclen);
  Asm.add c Reg.rax (Asm.r Reg.rsi);
  Asm.and_ c Reg.rax (Asm.i 1023);
  Asm.load c Reg.rdi (Asm.mem ~index:Reg.rax ~scale:8 ~disp:(data_base + 2048) ());
  Asm.sub c Reg.rbx (Asm.r Reg.rdi);
  Asm.and_ c Reg.rbx (Asm.i64 0xffffL);
  Asm.mul c Reg.rbx (Asm.r Reg.rbx);
  Asm.add c Reg.r9 (Asm.r Reg.rbx);
  Asm.add c Reg.rsi (Asm.i 1);
  Asm.cmp c Reg.rsi (Asm.i veclen);
  Asm.jlt c "comp";
  Asm.cmp c Reg.r9 (Asm.r Reg.r10);
  Asm.jge c "not_best";
  Asm.mov c Reg.r10 (Asm.r Reg.r9);
  Asm.label c "not_best";
  Asm.add c Reg.rdx (Asm.i 1);
  Asm.cmp c Reg.rdx (Asm.i corpus);
  Asm.jlt c "cand";
  Asm.add c Reg.r8 (Asm.r Reg.r10);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i queries);
  Asm.jlt c "query";
  finish_with c Reg.r8

(* fluidanimate: grid-neighbour force updates. *)
let fluidanimate ?(cells = 1024) ?(steps = 3) tid =
  let c = thread_prologue tid in
  Asm.func c ~klass:Program.Unr "fluid_main";
  Asm.mov c Reg.r9 (Asm.i 0);
  Asm.label c "step";
  Asm.mov c Reg.rcx (Asm.i 1);
  Asm.label c "cell";
  Asm.mov c Reg.rsi (Asm.r Reg.rcx);
  Asm.and_ c Reg.rsi (Asm.i 1022);
  Asm.load c Reg.rax (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:data_base ());
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base + 8) ());
  Asm.load c Reg.rdx (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:(data_base - 8) ());
  Asm.add c Reg.rbx (Asm.r Reg.rdx);
  Asm.sar c Reg.rbx (Asm.i 1);
  Asm.sub c Reg.rax (Asm.r Reg.rbx);
  Asm.sar c Reg.rax (Asm.i 2);
  Asm.store c (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:data_base ()) (Asm.r Reg.rax);
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i cells);
  Asm.jlt c "cell";
  Asm.add c Reg.r9 (Asm.i 1);
  Asm.cmp c Reg.r9 (Asm.i steps);
  Asm.jlt c "step";
  finish_with c Reg.rax

(* swaptions: Monte-Carlo path simulation with stack temporaries and
   divisions. *)
let swaptions ?(paths = 64) ?(horizon = 12) tid =
  let c = thread_prologue tid in
  Asm.set_main c;
  Asm.func c ~klass:Program.Unr "swaptions_main";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.mov c Reg.r8 (Asm.i 0);
  Asm.mov c Reg.r13 (Asm.i (424243 + tid));
  Asm.label c "path";
  Asm.push c (Asm.r Reg.rcx);
  Asm.sub c Reg.rsp (Asm.i 32);
  Asm.mov c Reg.rdi (Asm.i 10000) (* rate *);
  Asm.mov c Reg.rdx (Asm.i 0);
  Asm.label c "stepv";
  Asm.mul c Reg.r13 (Asm.i64 6364136223846793005L);
  Asm.add c Reg.r13 (Asm.i64 1442695040888963407L);
  Asm.mov c Reg.rax (Asm.r Reg.r13);
  Asm.shr c Reg.rax (Asm.i 33);
  Asm.and_ c Reg.rax (Asm.i 255);
  Asm.store c (Asm.mbd Reg.rsp 0) (Asm.r Reg.rax);
  Asm.load c Reg.rbx (Asm.mbd Reg.rsp 0);
  Asm.add c Reg.rdi (Asm.r Reg.rbx);
  Asm.sub c Reg.rdi (Asm.i 128);
  Asm.store c (Asm.mbd Reg.rsp 8) (Asm.r Reg.rdi);
  Asm.load c Reg.rax (Asm.mbd Reg.rsp 8);
  Asm.mov c Reg.rbx (Asm.i 100);
  Asm.div c Reg.rsi Reg.rax (Asm.r Reg.rbx);
  Asm.store c (Asm.mbd Reg.rsp 16) (Asm.r Reg.rsi);
  Asm.add c Reg.rdx (Asm.i 1);
  Asm.cmp c Reg.rdx (Asm.i horizon);
  Asm.jlt c "stepv";
  Asm.load c Reg.rax (Asm.mbd Reg.rsp 16);
  Asm.add c Reg.r8 (Asm.r Reg.rax);
  Asm.add c Reg.rsp (Asm.i 32);
  Asm.pop c Reg.rcx;
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i paths);
  Asm.jlt c "path";
  finish_with c Reg.r8

let threads_default = 4

(* Each benchmark: name, per-thread program builder. *)
let blackscholes_threads () =
  Array.init threads_default (fun tid ->
      let c = thread_prologue tid in
      Asm.set_main c;
      Asm.func c ~klass:Program.Unr "bs_main";
      Asm.mov c Reg.rcx (Asm.i 0);
      Asm.mov c Reg.r8 (Asm.i 0);
      Asm.label c "opt";
      Asm.mov c Reg.rsi (Asm.r Reg.rcx);
      Asm.and_ c Reg.rsi (Asm.i 1023);
      Asm.load c Reg.rdi (Asm.mem ~index:Reg.rsi ~scale:8 ~disp:data_base ());
      Asm.and_ c Reg.rdi (Asm.i64 0xffffffL);
      Asm.or_ c Reg.rdi (Asm.i 1);
      Asm.call c "bs_price";
      Asm.add c Reg.r8 (Asm.r Reg.rax);
      Asm.add c Reg.rcx (Asm.i 1);
      Asm.cmp c Reg.rcx (Asm.i 48);
      Asm.jlt c "opt";
      Asm.store c (Asm.mem ~disp:out_base ()) (Asm.r Reg.r8);
      Asm.halt c;
      blackscholes_price c;
      Asm.finish c)

let simple_threads f = Array.init threads_default (fun tid -> f tid)

let all =
  [
    ("blackscholes", blackscholes_threads);
    ("canneal", fun () -> simple_threads (fun tid -> canneal tid));
    ("dedup", fun () -> simple_threads (fun tid -> dedup tid));
    ("ferret", fun () -> simple_threads (fun tid -> ferret tid));
    ("fluidanimate", fun () -> simple_threads (fun tid -> fluidanimate tid));
    ("swaptions", fun () -> simple_threads (fun tid -> swaptions tid));
  ]
