(* Registry of every benchmark in the evaluation, with suite and class
   metadata (Section VIII-B).  The experiment harness iterates these. *)

open Protean_isa

type kind =
  | Single of (unit -> Program.t)
  | Multi of (unit -> Program.t array) (* one program per thread *)

type benchmark = {
  name : string;
  suite : string;
  klass : Program.klass; (* class of the (single-class) benchmark *)
  kind : kind;
}

let single suite klass (name, f) = { name; suite; klass; kind = Single f }

(* SPEC CPU2017-style kernels: general-purpose ARCH code. *)
let spec2017 = List.map (single "spec2017" Program.Arch) Spec.all

let spec2017_int =
  List.filter (fun b -> List.mem b.name Spec.int_names) spec2017

(* PARSEC-style multi-thread kernels. *)
let parsec =
  List.map
    (fun (name, f) ->
      { name = name ^ ".p"; suite = "parsec"; klass = Program.Unr; kind = Multi f })
    Parsec.all

(* ARCH-Wasm: sandboxed SPEC2006-style kernels. *)
let arch_wasm = List.map (single "arch-wasm" Program.Arch) Wasm.all

(* CTS-Crypto: static constant-time primitives, in the upstream-variant
   naming of Table V. *)
let cts_crypto =
  [
    single "cts-crypto" Program.Cts
      ("hacl.chacha20", fun () -> Chacha20.make ~variant:`Unrolled ~blocks:2 ());
    single "cts-crypto" Program.Cts ("hacl.curve25519", fun () -> X25519.make ());
    single "cts-crypto" Program.Cts
      ("hacl.poly1305", fun () -> Poly1305.make ~words:64 ());
    single "cts-crypto" Program.Cts
      ("sodium.salsa20", fun () -> Salsa20.make ~rounds:10 ());
    single "cts-crypto" Program.Cts
      ("sodium.sha256", fun () -> Sha256.make ~blocks:2 ());
    single "cts-crypto" Program.Cts
      ("ossl.chacha20", fun () -> Chacha20.make ~variant:`Looped ~blocks:2 ());
    single "cts-crypto" Program.Cts
      ("ossl.curve25519", fun () -> X25519.make ());
    single "cts-crypto" Program.Cts
      ("ossl.sha256", fun () -> Sha256.make ~blocks:3 ());
  ]

(* CT-Crypto: constant-time but not statically typeable primitives. *)
let ct_crypto =
  [
    single "ct-crypto" Program.Ct ("bearssl", fun () -> Xtea.make ~blocks:16 ());
    single "ct-crypto" Program.Ct ("ctaes", fun () -> Speck.make ~blocks:8 ());
    single "ct-crypto" Program.Ct ("djbsort", fun () -> Djbsort.make ~n:32 ());
  ]

(* UNR-Crypto: non-constant-time OpenSSL-style primitives. *)
let unr_crypto =
  [
    single "unr-crypto" Program.Unr ("ossl.bnexp", fun () -> Unr_crypto.modexp ());
    single "unr-crypto" Program.Unr ("ossl.dh", fun () -> Unr_crypto.dh ());
    single "unr-crypto" Program.Unr ("ossl.ecadd", fun () -> Unr_crypto.ecadd ());
  ]

(* Multi-class nginx: per-function classes are already in the program's
   function table. *)
let nginx =
  List.map
    (fun (name, (clients, requests)) ->
      {
        name;
        suite = "nginx";
        klass = Program.Unr;
        kind = Single (fun () -> Nginx_sim.make ~clients ~requests ());
      })
    Nginx_sim.variants

(* Microbenchmarks for targeted studies. *)
let micro =
  let open Protean_isa in
  let w32_index () =
    (* 32-bit register writes whose (zero-extended) values feed load
       addresses: the pattern behind SPT's 32-bit untaint performance
       fix (Section VII-B4c). *)
    let c = Asm.create () in
    Asm.data c ~addr:0x3000L (String.init 8192 (fun i -> Char.chr (i land 0xff)));
    Asm.func c ~klass:Program.Arch "w32_index";
    Asm.mov c Reg.rcx (Asm.i 0);
    Asm.mov c Reg.r8 (Asm.i 0);
    Asm.label c "loop";
    Asm.mov c ~w:Insn.W32 Reg.rax (Asm.i 64);
    Asm.add c Reg.rax (Asm.r Reg.rcx);
    Asm.load c Reg.rbx (Asm.mem ~index:Reg.rax ~disp:0x3000 ());
    Asm.add c Reg.r8 (Asm.r Reg.rbx);
    Asm.mov c ~w:Insn.W32 Reg.rdx (Asm.i 128);
    Asm.add c Reg.rdx (Asm.r Reg.rcx);
    Asm.load c Reg.rsi (Asm.mem ~index:Reg.rdx ~disp:0x3000 ());
    Asm.add c Reg.r8 (Asm.r Reg.rsi);
    Asm.add c Reg.rcx (Asm.i 1);
    Asm.cmp c Reg.rcx (Asm.i 2048);
    Asm.jlt c "loop";
    Asm.store c (Asm.mem ~disp:0x8000 ()) (Asm.r Reg.r8);
    Asm.halt c;
    Asm.finish c
  in
  [ { name = "w32-index"; suite = "micro"; klass = Program.Arch;
      kind = Single w32_index } ]

let all =
  spec2017 @ parsec @ arch_wasm @ cts_crypto @ ct_crypto @ unr_crypto @ nginx
  @ micro

let find name =
  match List.find_opt (fun b -> String.equal b.name name) all with
  | Some b -> b
  | None -> invalid_arg ("Suite.find: unknown benchmark " ^ name)
