(* Generators for the paper's figures. *)

module E = Experiment
module Suite = Protean_workloads.Suite
module Protcc = Protean_protcc.Protcc
module Config = Protean_ooo.Config
module Defense = Protean_defense.Defense
module Pipeline = Protean_ooo.Pipeline
module Stats = Protean_ooo.Stats

(* ------------------------------------------------------------------ *)
(* Fig. 5: ProtTrack access-predictor sensitivity — misprediction rate *)
(* and runtime overhead vs number of predictor entries (0 = infinite). *)
(* ------------------------------------------------------------------ *)

let predictor_sizes = [ 16; 64; 256; 1024; 4096; 0 ]

let figure_5 ?benches session =
  Format.printf
    "Fig. 5: ProtTrack access predictor sensitivity (SPEC2017int, P-core; \
     entries = 0 means infinite)@.@.";
  let specint = Tables.filter_benches benches Suite.spec2017_int in
  let points =
    List.map
      (fun entries ->
        let d = Defense.prot_track_entries entries in
        let per_pass pass =
          let dcfg =
            {
              E.label = Printf.sprintf "%s-%d" (Protcc.pass_name pass) entries;
              defense = d;
              pass = Some pass;
            }
          in
          let norms = List.map (fun b -> E.normalized session b dcfg) specint in
          let rates =
            List.map
              (fun b ->
                let r = E.run session (E.spec b dcfg) in
                List.fold_left
                  (fun acc (s : Stats.t) ->
                    acc
                    +.
                    if s.Stats.access_pred_lookups = 0 then 0.0
                    else
                      float_of_int s.Stats.access_pred_mispredicts
                      /. float_of_int s.Stats.access_pred_lookups)
                  0.0 r.E.stats
                /. float_of_int (List.length r.E.stats))
              specint
          in
          ( E.geomean norms,
            List.fold_left ( +. ) 0.0 rates /. float_of_int (List.length rates) )
        in
        let arch_norm, arch_rate = per_pass Protcc.P_arch in
        let ct_norm, ct_rate = per_pass Protcc.P_ct in
        let label = if entries = 0 then "inf" else string_of_int entries in
        (label, [ arch_rate; arch_norm; ct_rate; ct_norm ]))
      predictor_sizes
  in
  Textplot.series ~xlabel:"entries"
    ~series_names:
      [ "ARCH mispredict"; "ARCH runtime"; "CT mispredict"; "CT runtime" ]
    points;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Fig. 6: per-benchmark normalized runtime of PROTEAN-Track-ARCH/-CT  *)
(* vs STT/SPT on SPEC2017 (P-core) and PARSEC.                         *)
(* ------------------------------------------------------------------ *)

let figure_6 ?benches session =
  Format.printf
    "Fig. 6: normalized runtime of PROTEAN-Track-ARCH/-CT vs STT/SPT \
     (SPEC2017 *.s on P-core, PARSEC *.p on the full configuration)@.@.";
  let track_arch = E.protean_cfg `Track Protcc.P_arch in
  let track_ct = E.protean_cfg `Track Protcc.P_ct in
  let groups =
    List.map
      (fun (b : Suite.benchmark) ->
        let suffix = if b.Suite.suite = "parsec" then "" else ".s" in
        ( b.Suite.name ^ suffix,
          [
            E.normalized session b E.cfg_stt;
            E.normalized session b track_arch;
            E.normalized session b E.cfg_spt;
            E.normalized session b track_ct;
          ] ))
      (Tables.filter_benches benches (Suite.spec2017 @ Suite.parsec))
  in
  Textplot.bars
    ~series_names:[ "STT"; "PROTEAN-Track-ARCH"; "SPT"; "PROTEAN-Track-CT" ]
    groups
