lib/harness/textplot.ml: Array Format List Printf String
