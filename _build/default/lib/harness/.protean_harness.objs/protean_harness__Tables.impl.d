lib/harness/tables.ml: Experiment Format List Printf Program Protean_amulet Protean_defense Protean_isa Protean_ooo Protean_protcc Protean_workloads Textplot
