lib/harness/studies.ml: Experiment Format List Printf Protean_defense Protean_ooo Protean_protcc Protean_workloads Tables Textplot
