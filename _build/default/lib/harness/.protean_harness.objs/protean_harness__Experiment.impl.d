lib/harness/experiment.ml: Array Hashtbl List Printf Protean_defense Protean_ooo Protean_protcc Protean_workloads
