(* Minimal text rendering for tables and figures: aligned tables,
   horizontal bar charts (Fig. 6) and line series (Fig. 5). *)

let pad width s =
  if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

let pad_left width s =
  if String.length s >= width then s else String.make (width - String.length s) ' ' ^ s

(* Render a table: header row + data rows, auto-sized columns. *)
let table ?(out = Format.std_formatter) ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let line r =
    String.concat "  "
      (List.mapi (fun i cell -> if i = 0 then pad widths.(i) cell else pad_left widths.(i) cell) r)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf out "%s@." (line header);
  Format.fprintf out "%s@." sep;
  List.iter (fun r -> Format.fprintf out "%s@." (line r)) rows

(* Horizontal bar chart of (label, series of values); one bar group per
   label, one bar per series. *)
let bars ?(out = Format.std_formatter) ?(width = 50) ~series_names groups =
  let vmax =
    List.fold_left
      (fun m (_, vs) -> List.fold_left max m vs)
      0.0 groups
  in
  let scale v = int_of_float (v /. vmax *. float_of_int width) in
  let lwidth =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 8 groups
  in
  let swidth =
    List.fold_left (fun m s -> max m (String.length s)) 4 series_names
  in
  List.iter
    (fun (label, vs) ->
      List.iteri
        (fun i v ->
          let name = List.nth series_names i in
          Format.fprintf out "%s  %s |%s %.3f@."
            (pad lwidth (if i = 0 then label else ""))
            (pad swidth name)
            (String.make (scale v) '#')
            v)
        vs;
      Format.fprintf out "@.")
    groups

(* Line series: x values with one column of y per series. *)
let series ?(out = Format.std_formatter) ~xlabel ~series_names points =
  let header = xlabel :: series_names in
  let rows =
    List.map
      (fun (x, ys) -> x :: List.map (fun y -> Printf.sprintf "%.4f" y) ys)
      points
  in
  table ~out ~header rows
