(* The diagnostic studies of Section IX: ProtCC static overhead, the
   protection-tagged-L1D variants, the AccessDelay/AccessTrack ablation,
   the CONTROL speculation model case study, the secure-baseline bug-fix
   cost, and the protection-bit area model. *)

module E = Experiment
module Suite = Protean_workloads.Suite
module Protcc = Protean_protcc.Protcc
module Config = Protean_ooo.Config
module Defense = Protean_defense.Defense
module Policy = Protean_ooo.Policy

let specint ?benches () = Tables.filter_benches benches Suite.spec2017_int

(* Section IX-A2: code-size and runtime overhead of ProtCC instrumentation
   with PROTEAN's protections disabled (unsafe hardware). *)
let protcc_overhead ?benches session =
  Format.printf
    "ProtCC overhead (Section IX-A2): instrumented binaries on unsafe \
     hardware, SPEC2017int P-core@.@.";
  let rows =
    List.map
      (fun pass ->
        let sizes, runs =
          List.split
            (List.map
               (fun b ->
                 let size, run, _ = E.protcc_overhead session b pass in
                 (size, run))
               (specint ?benches ()))
        in
        [
          Protcc.pass_name pass;
          Printf.sprintf "%.1f%%" ((E.geomean sizes -. 1.0) *. 100.0);
          Printf.sprintf "%.1f%%" ((E.geomean runs -. 1.0) *. 100.0);
        ])
      [ Protcc.P_cts; Protcc.P_ct; Protcc.P_unr ]
  in
  Textplot.table ~header:[ "pass"; "code size"; "runtime" ] rows;
  Format.printf "@."

(* Section IX-A3: the protection-tagged L1D against its disabled and
   idealized (shadow-memory) variants. *)
let l1d_variants ?benches session =
  Format.printf
    "Protection-tagged L1D variants (Section IX-A3): PROTEAN-Track overhead \
     on SPEC2017int, P-core@.@.";
  let variant name mode pass =
    let config = Config.with_prot_mem mode Config.p_core in
    let dcfg = E.protean_cfg `Track pass in
    let v =
      E.geomean
        (List.map (fun b -> E.normalized session ~config b dcfg) (specint ?benches ()))
    in
    [ name; Protcc.pass_name pass; Printf.sprintf "%.1f%%" ((v -. 1.0) *. 100.0) ]
  in
  Textplot.table
    ~header:[ "L1D protection tags"; "pass"; "overhead" ]
    [
      variant "disabled (all memory protected)" Config.Prot_mem_none Protcc.P_arch;
      variant "tagged L1D (PROTEAN)" Config.Prot_mem_l1d Protcc.P_arch;
      variant "perfect shadow memory" Config.Prot_mem_perfect Protcc.P_arch;
      variant "disabled (all memory protected)" Config.Prot_mem_none Protcc.P_ct;
      variant "tagged L1D (PROTEAN)" Config.Prot_mem_l1d Protcc.P_ct;
      variant "perfect shadow memory" Config.Prot_mem_perfect Protcc.P_ct;
    ];
  Format.printf "@."

(* Section IX-A4: AccessDelay/AccessTrack applied directly to ProtISA —
   ProtTrack without its predictor, ProtDelay without selective wakeup. *)
let ablation_access ?benches session =
  Format.printf
    "AccessDelay/AccessTrack ablation (Section IX-A4): SPEC2017int, \
     P-core@.@.";
  let geo d pass =
    let dcfg = { E.label = d.Defense.id ^ "+" ^ Protcc.pass_name pass; defense = d; pass = Some pass } in
    E.geomean
      (List.map (fun b -> E.normalized session b dcfg) (specint ?benches ()))
  in
  let row name full ablated pass =
    let f = geo full pass and a = geo ablated pass in
    [
      name;
      Protcc.pass_name pass;
      Printf.sprintf "%.1f%%" ((f -. 1.0) *. 100.0);
      Printf.sprintf "%.1f%%" ((a -. 1.0) *. 100.0);
      Printf.sprintf "+%.1f%%" ((a -. f) *. 100.0);
    ]
  in
  Textplot.table
    ~header:[ "mechanism"; "pass"; "PROTEAN"; "ablated"; "delta" ]
    [
      row "ProtTrack vs AccessTrack" Defense.prot_track Defense.prot_track_nopred Protcc.P_arch;
      row "ProtTrack vs AccessTrack" Defense.prot_track Defense.prot_track_nopred Protcc.P_ct;
      row "ProtDelay vs AccessDelay" Defense.prot_delay Defense.prot_delay_unselective Protcc.P_arch;
      row "ProtDelay vs AccessDelay" Defense.prot_delay Defense.prot_delay_unselective Protcc.P_ct;
    ];
  Format.printf "@."

(* Section IX-A6: the noncomprehensive CONTROL speculation model. *)
let control_model ?benches session =
  Format.printf
    "CONTROL speculation model (Section IX-A6): SPEC2017int, P-core@.@.";
  let geo dcfg =
    E.geomean
      (List.map
         (fun b -> E.normalized session ~spec_model:Policy.Control b dcfg)
         (specint ?benches ()))
  in
  let p v = Printf.sprintf "%.1f%%" ((v -. 1.0) *. 100.0) in
  Textplot.table
    ~header:[ "defense"; "overhead under CONTROL" ]
    [
      [ "STT"; p (geo E.cfg_stt) ];
      [ "PROTEAN-Track-ARCH"; p (geo (E.protean_cfg `Track Protcc.P_arch)) ];
      [ "SPT"; p (geo E.cfg_spt) ];
      [ "PROTEAN-Track-CT"; p (geo (E.protean_cfg `Track Protcc.P_ct)) ];
    ];
  Format.printf "@."

(* Section IX-A7: the runtime cost of the secure-baseline fixes — here
   the SPT 32-bit-untaint performance fix, plus the squash-bug fix cost
   measured by running with the bug re-enabled. *)
let bugfix_cost ?benches session =
  Format.printf
    "Secure-baseline fix costs (Section IX-A7): SPEC2017int, P-core@.@.";
  let geo ?squash_bug dcfg =
    E.geomean
      (List.map
         (fun b ->
           let r = E.run session (E.spec ?squash_bug b dcfg) in
           let u = E.run session (E.spec b E.cfg_unsafe) in
           r.E.cycles /. u.E.cycles)
         (specint ?benches ()))
  in
  let p v = Printf.sprintf "%.3f" v in
  let spt_nofix = { E.label = "SPT-no-w32-fix"; defense = Defense.spt_no_w32_fix; pass = None } in
  (* The w32 fix only matters where 32-bit register writes feed
     transmitters; SPECint kernels barely use them, so the dedicated
     microbenchmark is reported alongside. *)
  let micro = List.hd Suite.micro in
  let micro_norm dcfg = E.normalized session micro dcfg in
  Textplot.table
    ~header:[ "configuration"; "normalized runtime" ]
    [
      [ "SPT (fixed)"; p (geo E.cfg_spt) ];
      [ "SPT without 32-bit untaint fix"; p (geo spt_nofix) ];
      [ "SPT (fixed), w32-index micro"; p (micro_norm E.cfg_spt) ];
      [ "SPT no-fix, w32-index micro"; p (micro_norm spt_nofix) ];
      [ "STT (squash fix applied)"; p (geo E.cfg_stt) ];
      [ "STT with pending-squash bug"; p (geo ~squash_bug:true E.cfg_stt) ];
      [ "SPT-SB (squash fix applied)"; p (geo E.cfg_spt_sb) ];
      [ "SPT-SB with pending-squash bug"; p (geo ~squash_bug:true E.cfg_spt_sb) ];
    ];
  Format.printf "@."

(* Section IV-C2a: the protection-bit storage/area model. *)
let area_report () =
  Format.printf "L1D protection-bit storage (Section IV-C2a)@.@.";
  let row (cfg : Config.t) =
    let kib = cfg.Config.l1d.Config.size_kib in
    [
      cfg.Config.name;
      Printf.sprintf "%d KiB" kib;
      Printf.sprintf "%d KiB" (kib / 8);
      "12.5%";
    ]
  in
  Textplot.table
    ~header:[ "core"; "L1D"; "protection bits"; "bit overhead" ]
    [ row Config.p_core; row Config.e_core ];
  Format.printf
    "(one protection bit per data byte; the paper's Cacti estimate puts the \
     corresponding area overhead at ~1.4%% of the L1D macro)@.@."
