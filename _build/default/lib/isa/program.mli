(** Whole-program representation: code, function table with
    vulnerable-code class labels, and initialized data sections. *)

type klass = Arch | Cts | Ct | Unr
(** The four jointly-exhaustive Spectre-vulnerable code classes (Fig. 2):
    non-secret-accessing, static constant-time, constant-time and
    unrestricted.  They form the hierarchy ARCH ⊂ CTS ⊂ CT ⊂ UNR. *)

val string_of_klass : klass -> string
val klass_of_string : string -> klass

val klass_rank : klass -> int
val klass_subsumes : klass -> klass -> bool
(** [klass_subsumes outer inner] is true when code of class [inner] is also
    of class [outer] (e.g. every ARCH program is also CT). *)

type func = { fname : string; entry : int; size : int; klass : klass }

type data_init = { addr : int64; bytes : string; secret : bool }
(** An initialized data region.  [secret] regions are the ones whose
    contents the security fuzzer varies between contract-equivalent
    executions. *)

type t = {
  code : Insn.t array;
  funcs : func list;
  data : data_init list;
  main : int;
  stack_base : int64;
}

val default_stack_base : int64

val make :
  ?funcs:func list ->
  ?data:data_init list ->
  ?main:int ->
  ?stack_base:int64 ->
  Insn.t array ->
  t

val length : t -> int
val insn : t -> int -> Insn.t
val in_bounds : t -> int -> bool

val func_at : t -> int -> func option
val klass_at : t -> int -> klass
(** Class of the function containing [pc]; unknown code is conservatively
    [Unr]. *)

val find_func : t -> string -> func option
val with_code : t -> Insn.t array -> t

val secret_ranges : t -> (int64 * int64) list
(** [(addr, len)] of every secret data region. *)

val pp : Format.formatter -> t -> unit
