(** Binary encoding of Protean ISA instructions.

    ProtISA is realized, as on x86 (Section IV-B), with a one-byte
    instruction prefix: a leading {!prot_prefix} byte marks the
    instruction PROT-prefixed.  The rest is a variable-length format —
    opcode byte followed by operand fields.

    For ISAs without instruction prefixes the paper proposes storing
    protections in a separate instruction metadata table (Section IV);
    {!encode_metadata_table}/{!decode_with_metadata} implement that
    alternative encoding: prefix-free instruction bytes plus a bit-packed
    side table of PROT bits. *)

val prot_prefix : int
(** The PROT prefix byte. *)

val encode_insn : Buffer.t -> Insn.t -> unit
val encode_program : Insn.t array -> string
val decode_program : string -> Insn.t array
(** Inverse of {!encode_program}.  Raises [Invalid_argument] on malformed
    input. *)

val encoded_size : Insn.t -> int
(** Size in bytes of one encoded instruction (PROT prefix included). *)

val encode_metadata_table : Insn.t array -> string * string
(** [(code, table)]: prefix-free instruction bytes plus the bit-packed
    PROT metadata table (one bit per instruction), for prefix-less ISAs. *)

val decode_with_metadata : string -> string -> Insn.t array
(** Inverse of {!encode_metadata_table}. *)
