(** Instructions of the Protean ISA, including the [PROT] prefix.

    The [prot] bit on every instruction models ProtISA's single instruction
    prefix (Section IV of the paper): a PROT-prefixed instruction adds its
    output registers to the architectural ProtSet; an unprefixed instruction
    removes its output registers and any memory bytes it reads from the
    ProtSet. *)

type width = W8 | W32 | W64
(** Destination width of data operations.  [W32] writes zero-extend into the
    full 64-bit register (as on x86-64); [W8] writes merge into the low
    byte, so the destination also counts as a read. *)

type binop = Add | Sub | And | Or | Xor | Shl | Shr | Sar | Mul
type unop = Not | Neg

type cond = Z | Nz | Lt | Le | Gt | Ge | B | Be | A | Ae
(** Branch conditions over the flags register; [B]/[Be]/[A]/[Ae] are the
    unsigned comparisons. *)

type src = Reg of Reg.t | Imm of int64

type mem = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int;
  disp : int;
}
(** x86-flavoured memory operand: [base + index*scale + disp]. *)

type op =
  | Mov of width * Reg.t * src
  | Lea of Reg.t * mem
  | Load of width * Reg.t * mem
  | Store of width * mem * src
  | Binop of binop * Reg.t * src
  | Unop of unop * Reg.t
  | Div of Reg.t * Reg.t * src
      (** [Div (dst, n, s)] computes [dst = n / s].  Faults when the divisor
          is zero; its latency depends on its operands, making division a
          transmitter (the gem5 channel AMuLeT* discovered). *)
  | Rem of Reg.t * Reg.t * src
  | Cmp of Reg.t * src
  | Test of Reg.t * src
  | Setcc of cond * Reg.t
  | Cmov of cond * Reg.t * src
  | Jcc of cond * int
  | Jmp of int
  | Jmpi of Reg.t
  | Call of int
  | Ret
  | Push of src
  | Pop of Reg.t
  | Nop
  | Halt

type t = { op : op; prot : bool }

val make : ?prot:bool -> op -> t

type role = Data | Addr | Cond_in | Target | Divide
(** The role a register source plays in an instruction.  [Addr], [Cond_in],
    [Target] and [Divide] are the sensitive roles assumed transmitted by the
    threat model (Section II-B1). *)

val mem_regs : mem -> Reg.t list
val src_regs : src -> Reg.t list

val reads : op -> (Reg.t * role) list
(** All register sources with their roles.  A [W8] destination also appears
    as a [Data] read because the write merges with the old value. *)

val read_regs : op -> Reg.t list

val writes : op -> Reg.t list
(** All register outputs, including the implicit [flags] output of
    arithmetic instructions and the [rsp] update of stack operations. *)

val is_transmitter : op -> bool
(** Loads/stores (address), conditional/indirect branches (condition or
    target), stack operations (address) and divisions (both inputs). *)

val sensitive_reads : op -> (Reg.t * role) list
(** The subset of {!reads} whose role is sensitive. *)

val accesses_memory : op -> bool
val is_load : op -> bool
val is_store : op -> bool
val is_branch : op -> bool
val is_cond_branch : op -> bool
val is_indirect : op -> bool
val is_div : op -> bool

val mem_width : op -> width option
val width_bytes : width -> int

val string_of_binop : binop -> string
val string_of_unop : unop -> string
val string_of_cond : cond -> string
val string_of_width : width -> string
val pp_src : Format.formatter -> src -> unit
val pp_mem : Format.formatter -> mem -> unit
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
