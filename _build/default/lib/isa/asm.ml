(* A small assembler DSL used to write workloads and tests directly against
   the Protean ISA.  It supports forward label references, per-function
   vulnerable-code class labels, and secret/public data sections. *)

type fixup = { at : int; label : string }

type open_func = { ofname : string; oentry : int; oklass : Program.klass }

type ctx = {
  mutable code : Insn.t list; (* reversed *)
  mutable n : int;
  labels : (string, int) Hashtbl.t;
  mutable fixups : fixup list;
  mutable funcs : Program.func list;
  mutable current : open_func option;
  mutable data : Program.data_init list;
  mutable main : int option;
  mutable stack_base : int64;
}

let create () =
  {
    code = [];
    n = 0;
    labels = Hashtbl.create 16;
    fixups = [];
    funcs = [];
    current = None;
    data = [];
    main = None;
    stack_base = Program.default_stack_base;
  }

let here ctx = ctx.n

let emit ctx insn =
  ctx.code <- insn :: ctx.code;
  ctx.n <- ctx.n + 1

let label ctx name =
  if Hashtbl.mem ctx.labels name then
    invalid_arg ("Asm.label: duplicate label " ^ name);
  Hashtbl.replace ctx.labels name ctx.n

(* ------------------------------------------------------------------ *)
(* Functions, data and entry point                                    *)
(* ------------------------------------------------------------------ *)

let close_current ctx =
  match ctx.current with
  | None -> ()
  | Some f ->
      ctx.funcs <-
        {
          Program.fname = f.ofname;
          entry = f.oentry;
          size = ctx.n - f.oentry;
          klass = f.oklass;
        }
        :: ctx.funcs;
      ctx.current <- None

let func ctx ?(klass = Program.Unr) name =
  close_current ctx;
  label ctx name;
  ctx.current <- Some { ofname = name; oentry = ctx.n; oklass = klass }

let set_main ctx = ctx.main <- Some ctx.n

let data ctx ~addr ?(secret = false) bytes =
  ctx.data <- { Program.addr; bytes; secret } :: ctx.data

(* Reserve [len] zero bytes at [addr]. *)
let bss ctx ~addr ?(secret = false) len =
  data ctx ~addr ~secret (String.make len '\000')

let data_i64 ctx ~addr ?(secret = false) values =
  let b = Buffer.create (8 * List.length values) in
  List.iter (fun v -> Buffer.add_int64_le b v) values;
  data ctx ~addr ~secret (Buffer.contents b)

let set_stack_base ctx sb = ctx.stack_base <- sb

(* ------------------------------------------------------------------ *)
(* Operand helpers                                                    *)
(* ------------------------------------------------------------------ *)

let r reg = Insn.Reg reg
let i n = Insn.Imm (Int64.of_int n)
let i64 n = Insn.Imm n

let mem ?base ?index ?(scale = 1) ?(disp = 0) () =
  { Insn.base; index; scale; disp }

let mb base = mem ~base ()
let mbd base disp = mem ~base ~disp ()
let mbi base index = mem ~base ~index ()
let mbis base index scale = mem ~base ~index ~scale ()

(* ------------------------------------------------------------------ *)
(* Instruction emitters                                               *)
(* ------------------------------------------------------------------ *)

let op ctx ?prot o = emit ctx (Insn.make ?prot o)

let mov ctx ?prot ?(w = Insn.W64) dst src = op ctx ?prot (Insn.Mov (w, dst, src))
let lea ctx ?prot dst m = op ctx ?prot (Insn.Lea (dst, m))
let load ctx ?prot ?(w = Insn.W64) dst m = op ctx ?prot (Insn.Load (w, dst, m))
let store ctx ?prot ?(w = Insn.W64) m src = op ctx ?prot (Insn.Store (w, m, src))

let binop ctx ?prot o dst src = op ctx ?prot (Insn.Binop (o, dst, src))
let add ctx ?prot dst src = binop ctx ?prot Insn.Add dst src
let sub ctx ?prot dst src = binop ctx ?prot Insn.Sub dst src
let and_ ctx ?prot dst src = binop ctx ?prot Insn.And dst src
let or_ ctx ?prot dst src = binop ctx ?prot Insn.Or dst src
let xor ctx ?prot dst src = binop ctx ?prot Insn.Xor dst src
let shl ctx ?prot dst src = binop ctx ?prot Insn.Shl dst src
let shr ctx ?prot dst src = binop ctx ?prot Insn.Shr dst src
let sar ctx ?prot dst src = binop ctx ?prot Insn.Sar dst src
let mul ctx ?prot dst src = binop ctx ?prot Insn.Mul dst src

let not_ ctx ?prot dst = op ctx ?prot (Insn.Unop (Insn.Not, dst))
let neg ctx ?prot dst = op ctx ?prot (Insn.Unop (Insn.Neg, dst))

let div ctx ?prot dst n src = op ctx ?prot (Insn.Div (dst, n, src))
let rem ctx ?prot dst n src = op ctx ?prot (Insn.Rem (dst, n, src))

let cmp ctx ?prot a b = op ctx ?prot (Insn.Cmp (a, b))
let test ctx ?prot a b = op ctx ?prot (Insn.Test (a, b))
let setcc ctx ?prot c dst = op ctx ?prot (Insn.Setcc (c, dst))
let cmov ctx ?prot c dst src = op ctx ?prot (Insn.Cmov (c, dst, src))

let push ctx ?prot src = op ctx ?prot (Insn.Push src)
let pop ctx ?prot dst = op ctx ?prot (Insn.Pop dst)
let nop ctx = op ctx Insn.Nop
let halt ctx = op ctx Insn.Halt
let jmpi ctx ?prot reg = op ctx ?prot (Insn.Jmpi reg)
let ret ctx = op ctx Insn.Ret

(* Control flow with label targets: emit a placeholder target and record a
   fixup resolved in [finish]. *)
let fix ctx target = ctx.fixups <- { at = ctx.n; label = target } :: ctx.fixups

let jcc ctx ?prot c target =
  fix ctx target;
  op ctx ?prot (Insn.Jcc (c, -1))

let jz ctx ?prot t = jcc ctx ?prot Insn.Z t
let jnz ctx ?prot t = jcc ctx ?prot Insn.Nz t
let jlt ctx ?prot t = jcc ctx ?prot Insn.Lt t
let jle ctx ?prot t = jcc ctx ?prot Insn.Le t
let jgt ctx ?prot t = jcc ctx ?prot Insn.Gt t
let jge ctx ?prot t = jcc ctx ?prot Insn.Ge t
let jb ctx ?prot t = jcc ctx ?prot Insn.B t
let jae ctx ?prot t = jcc ctx ?prot Insn.Ae t

let jmp ctx target =
  fix ctx target;
  op ctx (Insn.Jmp (-1))

let call ctx target =
  fix ctx target;
  op ctx (Insn.Call (-1))

(* Identity register move used by ProtCC to architecturally unprotect a
   register (Section IV-B3). *)
let id_move ctx reg = mov ctx reg (Insn.Reg reg)

(* Mark the end of the benchmark's warmup phase: the cycle at which this
   store commits starts the measured region (the pipeline recognizes the
   magic address).  Only the first marker counts. *)
let mark_measurement ctx = store ctx (mem ~disp:0x7770 ()) (Insn.Imm 1L)

(* ------------------------------------------------------------------ *)
(* Finalization                                                       *)
(* ------------------------------------------------------------------ *)

let finish ctx =
  close_current ctx;
  let code = Array.of_list (List.rev ctx.code) in
  List.iter
    (fun { at; label } ->
      let target =
        match Hashtbl.find_opt ctx.labels label with
        | Some t -> t
        | None -> invalid_arg ("Asm.finish: undefined label " ^ label)
      in
      let insn = code.(at) in
      let op' =
        match insn.Insn.op with
        | Insn.Jcc (c, _) -> Insn.Jcc (c, target)
        | Insn.Jmp _ -> Insn.Jmp target
        | Insn.Call _ -> Insn.Call target
        | _ -> assert false
      in
      code.(at) <- { insn with Insn.op = op' })
    ctx.fixups;
  let main = match ctx.main with Some m -> m | None -> 0 in
  Program.make ~funcs:(List.rev ctx.funcs) ~data:(List.rev ctx.data) ~main
    ~stack_base:ctx.stack_base code
