(* Whole-program representation: code, function table with vulnerable-code
   class labels (Section III-A), and initialized data sections with secrecy
   labels used by the security fuzzer and observer modes. *)

type klass = Arch | Cts | Ct | Unr

let string_of_klass = function
  | Arch -> "ARCH"
  | Cts -> "CTS"
  | Ct -> "CT"
  | Unr -> "UNR"

let klass_of_string = function
  | "ARCH" | "arch" -> Arch
  | "CTS" | "cts" -> Cts
  | "CT" | "ct" -> Ct
  | "UNR" | "unr" -> Unr
  | s -> invalid_arg ("Program.klass_of_string: " ^ s)

(* The class hierarchy ARCH ⊂ CTS ⊂ CT ⊂ UNR (Fig. 2). *)
let klass_rank = function Arch -> 0 | Cts -> 1 | Ct -> 2 | Unr -> 3
let klass_subsumes outer inner = klass_rank outer >= klass_rank inner

type func = {
  fname : string;
  entry : int; (* pc of first instruction *)
  size : int; (* number of instructions *)
  klass : klass;
}

type data_init = {
  addr : int64;
  bytes : string;
  secret : bool; (* true when the region holds secret input data *)
}

type t = {
  code : Insn.t array;
  funcs : func list;
  data : data_init list;
  main : int;
  stack_base : int64; (* initial rsp *)
}

let default_stack_base = 0x100000L

let make ?(funcs = []) ?(data = []) ?(main = 0)
    ?(stack_base = default_stack_base) code =
  { code; funcs; data; main; stack_base }

let length p = Array.length p.code
let insn p pc = p.code.(pc)
let in_bounds p pc = pc >= 0 && pc < Array.length p.code

(* The function containing [pc], if any. *)
let func_at p pc =
  List.find_opt (fun f -> pc >= f.entry && pc < f.entry + f.size) p.funcs

let klass_at p pc =
  match func_at p pc with Some f -> f.klass | None -> Unr

let find_func p name = List.find_opt (fun f -> String.equal f.fname name) p.funcs

(* Replace the code of one function, patching up the function table.  Used
   by ProtCC, whose passes may grow a function by inserting identity
   moves; [new_code] is the whole new code array and [shift_map] gives the
   new pc of each old pc so the other functions' entries stay valid. *)
let with_code p code = { p with code }

let secret_ranges p =
  List.filter_map
    (fun d ->
      if d.secret then Some (d.addr, Int64.of_int (String.length d.bytes))
      else None)
    p.data

let pp fmt p =
  Array.iteri
    (fun pc insn ->
      (match List.find_opt (fun f -> f.entry = pc) p.funcs with
      | Some f ->
          Format.fprintf fmt "<%s>: # %s@." f.fname (string_of_klass f.klass)
      | None -> ());
      Format.fprintf fmt "%4d: %a@." pc Insn.pp insn)
    p.code
