(* Architectural registers of the Protean ISA.

   The ISA models an x86-64-flavoured register file: 16 general-purpose
   64-bit registers plus the flags register.  A hidden temporary register
   is reserved for micro-architectural sequencing (e.g. the loaded return
   address of [ret]); it is never visible to compiled code.

   [rsp] is the stack pointer, which ProtCC-UNR treats specially: it never
   holds secret program data (Section V-A4 of the paper). *)

type t = int

let count = 18

let rax = 0
let rcx = 1
let rdx = 2
let rbx = 3
let rsp = 4
let rbp = 5
let rsi = 6
let rdi = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15
let flags = 16
let tmp = 17

let is_gpr r = r >= 0 && r < 16
let is_flags r = r = flags

let of_int i =
  if i < 0 || i >= count then invalid_arg "Reg.of_int" else i

let to_int r = r

let all_gprs = List.init 16 (fun i -> i)
let all = List.init count (fun i -> i)

let names =
  [| "rax"; "rcx"; "rdx"; "rbx"; "rsp"; "rbp"; "rsi"; "rdi";
     "r8"; "r9"; "r10"; "r11"; "r12"; "r13"; "r14"; "r15";
     "flags"; "tmp" |]

let name r = names.(r)

let of_name s =
  let rec find i =
    if i >= count then invalid_arg ("Reg.of_name: " ^ s)
    else if String.equal names.(i) s then i
    else find (i + 1)
  in
  find 0

let pp fmt r = Format.pp_print_string fmt (name r)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
