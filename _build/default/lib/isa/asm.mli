(** Assembler DSL for writing programs against the Protean ISA.

    Supports forward label references, function boundaries with
    vulnerable-code class labels (consumed by ProtCC), secret/public data
    sections (consumed by the security fuzzer), and the measurement
    marker used by the benchmark methodology. *)

type ctx

val create : unit -> ctx

val here : ctx -> int
(** Current instruction index (the pc the next emitted instruction gets). *)

val emit : ctx -> Insn.t -> unit
val label : ctx -> string -> unit
(** Define a label at the current position.  Raises [Invalid_argument] on
    duplicates. *)

(** {1 Functions, data, entry point} *)

val func : ctx -> ?klass:Program.klass -> string -> unit
(** Open a new function (closing any previous one) with the given
    vulnerable-code class; also defines a label with the function name so
    it can be [call]ed. *)

val set_main : ctx -> unit
(** Mark the current position as the program entry point. *)

val data : ctx -> addr:int64 -> ?secret:bool -> string -> unit
val bss : ctx -> addr:int64 -> ?secret:bool -> int -> unit
val data_i64 : ctx -> addr:int64 -> ?secret:bool -> int64 list -> unit
val set_stack_base : ctx -> int64 -> unit

(** {1 Operand helpers} *)

val r : Reg.t -> Insn.src
val i : int -> Insn.src
val i64 : int64 -> Insn.src

val mem :
  ?base:Reg.t -> ?index:Reg.t -> ?scale:int -> ?disp:int -> unit -> Insn.mem

val mb : Reg.t -> Insn.mem
(** [mb base] = [[base]]. *)

val mbd : Reg.t -> int -> Insn.mem
(** [mbd base disp] = [[base + disp]]. *)

val mbi : Reg.t -> Reg.t -> Insn.mem
(** [mbi base index] = [[base + index]]. *)

val mbis : Reg.t -> Reg.t -> int -> Insn.mem
(** [mbis base index scale] = [[base + index*scale]]. *)

(** {1 Instruction emitters}

    Every emitter takes [?prot] to set the ProtISA [PROT] prefix. *)

val op : ctx -> ?prot:bool -> Insn.op -> unit
val mov : ctx -> ?prot:bool -> ?w:Insn.width -> Reg.t -> Insn.src -> unit
val lea : ctx -> ?prot:bool -> Reg.t -> Insn.mem -> unit
val load : ctx -> ?prot:bool -> ?w:Insn.width -> Reg.t -> Insn.mem -> unit
val store : ctx -> ?prot:bool -> ?w:Insn.width -> Insn.mem -> Insn.src -> unit
val binop : ctx -> ?prot:bool -> Insn.binop -> Reg.t -> Insn.src -> unit
val add : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val sub : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val and_ : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val or_ : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val xor : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val shl : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val shr : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val sar : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val mul : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val not_ : ctx -> ?prot:bool -> Reg.t -> unit
val neg : ctx -> ?prot:bool -> Reg.t -> unit

val div : ctx -> ?prot:bool -> Reg.t -> Reg.t -> Insn.src -> unit
(** [div c dst n s] emits [dst = n / s] (faults when [s] is zero). *)

val rem : ctx -> ?prot:bool -> Reg.t -> Reg.t -> Insn.src -> unit
val cmp : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val test : ctx -> ?prot:bool -> Reg.t -> Insn.src -> unit
val setcc : ctx -> ?prot:bool -> Insn.cond -> Reg.t -> unit
val cmov : ctx -> ?prot:bool -> Insn.cond -> Reg.t -> Insn.src -> unit
val push : ctx -> ?prot:bool -> Insn.src -> unit
val pop : ctx -> ?prot:bool -> Reg.t -> unit
val nop : ctx -> unit
val halt : ctx -> unit
val jmpi : ctx -> ?prot:bool -> Reg.t -> unit
val ret : ctx -> unit

(** {1 Control flow to labels} *)

val jcc : ctx -> ?prot:bool -> Insn.cond -> string -> unit
val jz : ctx -> ?prot:bool -> string -> unit
val jnz : ctx -> ?prot:bool -> string -> unit
val jlt : ctx -> ?prot:bool -> string -> unit
val jle : ctx -> ?prot:bool -> string -> unit
val jgt : ctx -> ?prot:bool -> string -> unit
val jge : ctx -> ?prot:bool -> string -> unit
val jb : ctx -> ?prot:bool -> string -> unit
val jae : ctx -> ?prot:bool -> string -> unit
val jmp : ctx -> string -> unit
val call : ctx -> string -> unit

val id_move : ctx -> Reg.t -> unit
(** The identity register move ProtCC uses to architecturally unprotect a
    register (Section IV-B3). *)

val mark_measurement : ctx -> unit
(** Mark the end of the warmup phase: the cycle at which this (magic)
    store commits starts the measured region; only the first marker
    counts.  Mirrors the paper's simpoint-warmup methodology. *)

val finish : ctx -> Program.t
(** Resolve all label fixups and produce the program.  Raises
    [Invalid_argument] on undefined labels. *)
