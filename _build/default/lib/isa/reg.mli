(** Architectural registers of the Protean ISA.

    Sixteen x86-64-flavoured general-purpose registers, the flags register,
    and one hidden temporary used for micro-op sequencing.  [rsp] is the
    stack pointer, treated specially by ProtCC-UNR (it never holds secret
    program data). *)

type t = private int

val count : int
(** Total number of architectural registers, including [flags] and [tmp]. *)

val rax : t
val rcx : t
val rdx : t
val rbx : t
val rsp : t
val rbp : t
val rsi : t
val rdi : t
val r8 : t
val r9 : t
val r10 : t
val r11 : t
val r12 : t
val r13 : t
val r14 : t
val r15 : t

val flags : t
(** The condition-flags register, an implicit output of arithmetic
    instructions and the implicit input of conditional branches. *)

val tmp : t
(** Hidden temporary register, not visible to compiled code. *)

val is_gpr : t -> bool
val is_flags : t -> bool

val of_int : int -> t
(** [of_int i] is register number [i].  Raises [Invalid_argument] when [i]
    is out of range. *)

val to_int : t -> int

val all_gprs : t list
(** The sixteen general-purpose registers, in numbering order. *)

val all : t list
(** Every architectural register, including [flags] and [tmp]. *)

val name : t -> string
val of_name : string -> t
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
