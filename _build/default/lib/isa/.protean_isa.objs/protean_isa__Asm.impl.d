lib/isa/asm.ml: Array Buffer Hashtbl Insn Int64 List Program String
