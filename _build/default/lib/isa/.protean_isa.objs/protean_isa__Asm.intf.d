lib/isa/asm.mli: Insn Program Reg
