lib/isa/reg.ml: Array Format List Stdlib String
