lib/isa/program.mli: Format Insn
