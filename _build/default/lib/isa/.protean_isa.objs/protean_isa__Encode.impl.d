lib/isa/encode.ml: Array Buffer Bytes Char Insn Int32 List Printf Reg String
