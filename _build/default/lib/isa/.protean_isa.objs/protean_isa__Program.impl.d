lib/isa/program.ml: Array Format Insn Int64 List String
