(* Instructions of the Protean ISA, including the PROT prefix (Section IV
   of the paper).

   Each instruction carries a [prot] bit modelling the PROT instruction
   prefix: a PROT-prefixed instruction adds its output registers to the
   architectural ProtSet; an unprefixed instruction removes its output
   registers and any memory bytes it reads from the ProtSet.

   The module also classifies instructions as transmitters and exposes
   their operand roles, which is what both the sequential contract
   executor and the hardware protection mechanisms consume. *)

type width = W8 | W32 | W64

type binop =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Sar
  | Mul

type unop = Not | Neg

type cond =
  | Z   (* equal / zero *)
  | Nz  (* not equal *)
  | Lt  (* signed less-than *)
  | Le
  | Gt
  | Ge
  | B   (* unsigned below *)
  | Be
  | A   (* unsigned above *)
  | Ae

type src = Reg of Reg.t | Imm of int64

type mem = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int; (* 1, 2, 4 or 8 *)
  disp : int;
}

type op =
  | Mov of width * Reg.t * src
  | Lea of Reg.t * mem
  | Load of width * Reg.t * mem
  | Store of width * mem * src
  | Binop of binop * Reg.t * src
  | Unop of unop * Reg.t
  | Div of Reg.t * Reg.t * src (* dst = reg / src; conditionally faults *)
  | Rem of Reg.t * Reg.t * src
  | Cmp of Reg.t * src
  | Test of Reg.t * src
  | Setcc of cond * Reg.t
  | Cmov of cond * Reg.t * src
  | Jcc of cond * int
  | Jmp of int
  | Jmpi of Reg.t
  | Call of int
  | Ret
  | Push of src
  | Pop of Reg.t
  | Nop
  | Halt

type t = { op : op; prot : bool }

let make ?(prot = false) op = { op; prot }

(* ------------------------------------------------------------------ *)
(* Operand roles                                                      *)
(* ------------------------------------------------------------------ *)

(* The role a register source plays in an instruction.  Sensitive roles
   (address, condition, target, divide) are the ones the threat model
   (Section II-B1) assumes are transmitted when the instruction
   executes/resolves. *)
type role =
  | Data    (* ordinary data-flow input *)
  | Addr    (* address operand of a memory access *)
  | Cond_in (* flags input of a conditional branch / setcc / cmov *)
  | Target  (* target operand of an indirect jump *)
  | Divide  (* input operand of a division *)

let mem_regs m =
  let add acc = function Some r -> r :: acc | None -> acc in
  add (add [] m.index) m.base

let src_regs = function Reg r -> [ r ] | Imm _ -> []

(* Register reads with their roles, in a fixed order. *)
let reads op =
  let mem_reads m = List.map (fun r -> (r, Addr)) (mem_regs m) in
  let data s = List.map (fun r -> (r, Data)) (src_regs s) in
  match op with
  | Mov (w, dst, s) ->
      (* Sub-register writes merge with the previous value of [dst]. *)
      let merge = match w with W8 -> [ (dst, Data) ] | W32 | W64 -> [] in
      data s @ merge
  | Lea (_, m) -> List.map (fun r -> (r, Data)) (mem_regs m)
  | Load (w, d, m) ->
      let merge = match w with W8 -> [ (d, Data) ] | W32 | W64 -> [] in
      mem_reads m @ merge
  | Store (_, m, s) -> mem_reads m @ data s
  | Binop (_, dst, s) -> ((dst, Data) :: data s)
  | Unop (_, dst) -> [ (dst, Data) ]
  | Div (_, n, s) | Rem (_, n, s) -> ((n, Divide) :: List.map (fun r -> (r, Divide)) (src_regs s))
  | Cmp (r, s) -> ((r, Data) :: data s)
  | Test (r, s) -> ((r, Data) :: data s)
  | Setcc (_, _) -> [ (Reg.flags, Cond_in) ]
  | Cmov (_, dst, s) -> ((Reg.flags, Cond_in) :: (dst, Data) :: data s)
  | Jcc (_, _) -> [ (Reg.flags, Cond_in) ]
  | Jmp _ -> []
  | Jmpi r -> [ (r, Target) ]
  | Call _ -> [ (Reg.rsp, Addr) ]
  | Ret -> [ (Reg.rsp, Addr) ]
  | Push s -> ((Reg.rsp, Addr) :: data s)
  | Pop _ -> [ (Reg.rsp, Addr) ]
  | Nop | Halt -> []

let read_regs op = List.map fst (reads op)

(* Register outputs.  Arithmetic instructions implicitly write flags. *)
let writes op =
  match op with
  | Mov (_, dst, _) -> [ dst ]
  | Lea (dst, _) -> [ dst ]
  | Load (_, dst, _) -> [ dst ]
  | Store (_, _, _) -> []
  | Binop (_, dst, _) -> [ dst; Reg.flags ]
  | Unop (_, dst) -> [ dst; Reg.flags ]
  | Div (dst, _, _) | Rem (dst, _, _) -> [ dst ]
  | Cmp (_, _) | Test (_, _) -> [ Reg.flags ]
  | Setcc (_, dst) -> [ dst ]
  | Cmov (_, dst, _) -> [ dst ]
  | Jcc (_, _) | Jmp _ | Jmpi _ -> []
  | Call _ -> [ Reg.rsp ]
  | Ret -> [ Reg.rsp; Reg.tmp ]
  | Push _ -> [ Reg.rsp ]
  | Pop dst -> [ dst; Reg.rsp ]
  | Nop | Halt -> []

(* ------------------------------------------------------------------ *)
(* Transmitter classification (threat model, Section II-B1)           *)
(* ------------------------------------------------------------------ *)

(* Loads and stores transmit their address operands when they execute;
   conditional and indirect branches transmit their condition/target when
   they resolve; division micro-ops partially transmit both inputs (the
   new gem5 channel found by the AMuLeT-star fuzzer).
   [Call]/[Ret]/[Push]/[Pop] contain
   memory accesses and so transmit their (stack-pointer) address. *)
let is_transmitter op =
  match op with
  | Load _ | Store _ | Jcc _ | Jmpi _ | Call _ | Ret | Push _ | Pop _
  | Div _ | Rem _ ->
      true
  | Mov _ | Lea _ | Binop _ | Unop _ | Cmp _ | Test _ | Setcc _ | Cmov _
  | Jmp _ | Nop | Halt ->
      false

(* The sensitive register operands of a transmitter: the subset of its
   reads whose role is sensitive. *)
let sensitive_reads op =
  List.filter
    (fun (_, role) ->
      match role with
      | Addr | Cond_in | Target | Divide -> true
      | Data -> false)
    (reads op)

let accesses_memory op =
  match op with
  | Load _ | Store _ | Call _ | Ret | Push _ | Pop _ -> true
  | _ -> false

let is_load op =
  match op with Load _ | Pop _ | Ret -> true | _ -> false

let is_store op =
  match op with Store _ | Push _ | Call _ -> true | _ -> false

let is_branch op =
  match op with
  | Jcc _ | Jmp _ | Jmpi _ | Call _ | Ret -> true
  | _ -> false

let is_cond_branch op = match op with Jcc _ -> true | _ -> false

let is_indirect op = match op with Jmpi _ | Ret -> true | _ -> false

let is_div op = match op with Div _ | Rem _ -> true | _ -> false

(* Width of the memory access performed by the instruction, if any. *)
let mem_width op =
  match op with
  | Load (w, _, _) | Store (w, _, _) -> Some w
  | Call _ | Ret | Push _ | Pop _ -> Some W64
  | _ -> None

let width_bytes = function W8 -> 1 | W32 -> 4 | W64 -> 8

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                    *)
(* ------------------------------------------------------------------ *)

let string_of_binop = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"
  | Mul -> "mul"

let string_of_unop = function Not -> "not" | Neg -> "neg"

let string_of_cond = function
  | Z -> "z"
  | Nz -> "nz"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | B -> "b"
  | Be -> "be"
  | A -> "a"
  | Ae -> "ae"

let string_of_width = function W8 -> "b" | W32 -> "l" | W64 -> "q"

let pp_src fmt = function
  | Reg r -> Reg.pp fmt r
  | Imm i -> Format.fprintf fmt "$%Ld" i

let pp_mem fmt m =
  let pp_opt fmt = function
    | Some r -> Reg.pp fmt r
    | None -> Format.pp_print_string fmt "_"
  in
  Format.fprintf fmt "[%a + %a*%d + %d]" pp_opt m.base pp_opt m.index m.scale
    m.disp

let pp_op fmt op =
  let f x = Format.fprintf fmt x in
  match op with
  | Mov (w, d, s) -> f "mov%s %a, %a" (string_of_width w) Reg.pp d pp_src s
  | Lea (d, m) -> f "lea %a, %a" Reg.pp d pp_mem m
  | Load (w, d, m) -> f "load%s %a, %a" (string_of_width w) Reg.pp d pp_mem m
  | Store (w, m, s) -> f "store%s %a, %a" (string_of_width w) pp_mem m pp_src s
  | Binop (o, d, s) -> f "%s %a, %a" (string_of_binop o) Reg.pp d pp_src s
  | Unop (o, d) -> f "%s %a" (string_of_unop o) Reg.pp d
  | Div (d, n, s) -> f "div %a, %a, %a" Reg.pp d Reg.pp n pp_src s
  | Rem (d, n, s) -> f "rem %a, %a, %a" Reg.pp d Reg.pp n pp_src s
  | Cmp (r, s) -> f "cmp %a, %a" Reg.pp r pp_src s
  | Test (r, s) -> f "test %a, %a" Reg.pp r pp_src s
  | Setcc (c, d) -> f "set%s %a" (string_of_cond c) Reg.pp d
  | Cmov (c, d, s) -> f "cmov%s %a, %a" (string_of_cond c) Reg.pp d pp_src s
  | Jcc (c, t) -> f "j%s %d" (string_of_cond c) t
  | Jmp t -> f "jmp %d" t
  | Jmpi r -> f "jmpi %a" Reg.pp r
  | Call t -> f "call %d" t
  | Ret -> f "ret"
  | Push s -> f "push %a" pp_src s
  | Pop d -> f "pop %a" Reg.pp d
  | Nop -> f "nop"
  | Halt -> f "halt"

let pp fmt { op; prot } =
  if prot then Format.fprintf fmt "PROT %a" pp_op op else pp_op fmt op

let to_string i = Format.asprintf "%a" pp i
