(* Binary encoding of Protean ISA instructions.

   ProtISA is realized (as on x86, Section IV) with a one-byte instruction
   prefix: a leading [prot_prefix] byte marks the instruction PROT-prefixed.
   The rest is a simple variable-length format: an opcode byte followed by
   the operand fields.  Code is stored as the concatenation of encoded
   instructions; [decode_program] recovers the instruction array. *)

let prot_prefix = 0x50

let width_code = function Insn.W8 -> 0 | Insn.W32 -> 1 | Insn.W64 -> 2

let width_of_code = function
  | 0 -> Insn.W8
  | 1 -> Insn.W32
  | 2 -> Insn.W64
  | n -> invalid_arg (Printf.sprintf "Encode: bad width code %d" n)

let binop_code = function
  | Insn.Add -> 0
  | Insn.Sub -> 1
  | Insn.And -> 2
  | Insn.Or -> 3
  | Insn.Xor -> 4
  | Insn.Shl -> 5
  | Insn.Shr -> 6
  | Insn.Sar -> 7
  | Insn.Mul -> 8

let binop_of_code = function
  | 0 -> Insn.Add
  | 1 -> Insn.Sub
  | 2 -> Insn.And
  | 3 -> Insn.Or
  | 4 -> Insn.Xor
  | 5 -> Insn.Shl
  | 6 -> Insn.Shr
  | 7 -> Insn.Sar
  | 8 -> Insn.Mul
  | n -> invalid_arg (Printf.sprintf "Encode: bad binop code %d" n)

let cond_code = function
  | Insn.Z -> 0
  | Insn.Nz -> 1
  | Insn.Lt -> 2
  | Insn.Le -> 3
  | Insn.Gt -> 4
  | Insn.Ge -> 5
  | Insn.B -> 6
  | Insn.Be -> 7
  | Insn.A -> 8
  | Insn.Ae -> 9

let cond_of_code = function
  | 0 -> Insn.Z
  | 1 -> Insn.Nz
  | 2 -> Insn.Lt
  | 3 -> Insn.Le
  | 4 -> Insn.Gt
  | 5 -> Insn.Ge
  | 6 -> Insn.B
  | 7 -> Insn.Be
  | 8 -> Insn.A
  | 9 -> Insn.Ae
  | n -> invalid_arg (Printf.sprintf "Encode: bad cond code %d" n)

(* Opcode bytes. *)
let op_nop = 0
let op_halt = 1
let op_mov = 2
let op_lea = 3
let op_load = 4
let op_store = 5
let op_binop = 6
let op_unop = 7
let op_div = 8
let op_rem = 9
let op_cmp = 10
let op_test = 11
let op_setcc = 12
let op_cmov = 13
let op_jcc = 14
let op_jmp = 15
let op_jmpi = 16
let op_call = 17
let op_ret = 18
let op_push = 19
let op_pop = 20

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let put_reg b r = Buffer.add_uint8 b (Reg.to_int r)

let put_opt_reg b = function
  | Some r -> Buffer.add_uint8 b (Reg.to_int r)
  | None -> Buffer.add_uint8 b 0xff

let put_src b = function
  | Insn.Reg r ->
      Buffer.add_uint8 b 0;
      put_reg b r
  | Insn.Imm v ->
      Buffer.add_uint8 b 1;
      Buffer.add_int64_le b v

let put_mem b (m : Insn.mem) =
  put_opt_reg b m.base;
  put_opt_reg b m.index;
  Buffer.add_uint8 b m.scale;
  Buffer.add_int32_le b (Int32.of_int m.disp)

let put_target b t = Buffer.add_int32_le b (Int32.of_int t)

let encode_op b op =
  let u8 = Buffer.add_uint8 b in
  match op with
  | Insn.Nop -> u8 op_nop
  | Insn.Halt -> u8 op_halt
  | Insn.Mov (w, d, s) ->
      u8 op_mov;
      u8 (width_code w);
      put_reg b d;
      put_src b s
  | Insn.Lea (d, m) ->
      u8 op_lea;
      put_reg b d;
      put_mem b m
  | Insn.Load (w, d, m) ->
      u8 op_load;
      u8 (width_code w);
      put_reg b d;
      put_mem b m
  | Insn.Store (w, m, s) ->
      u8 op_store;
      u8 (width_code w);
      put_mem b m;
      put_src b s
  | Insn.Binop (o, d, s) ->
      u8 op_binop;
      u8 (binop_code o);
      put_reg b d;
      put_src b s
  | Insn.Unop (o, d) ->
      u8 op_unop;
      u8 (match o with Insn.Not -> 0 | Insn.Neg -> 1);
      put_reg b d
  | Insn.Div (d, n, s) ->
      u8 op_div;
      put_reg b d;
      put_reg b n;
      put_src b s
  | Insn.Rem (d, n, s) ->
      u8 op_rem;
      put_reg b d;
      put_reg b n;
      put_src b s
  | Insn.Cmp (r, s) ->
      u8 op_cmp;
      put_reg b r;
      put_src b s
  | Insn.Test (r, s) ->
      u8 op_test;
      put_reg b r;
      put_src b s
  | Insn.Setcc (c, d) ->
      u8 op_setcc;
      u8 (cond_code c);
      put_reg b d
  | Insn.Cmov (c, d, s) ->
      u8 op_cmov;
      u8 (cond_code c);
      put_reg b d;
      put_src b s
  | Insn.Jcc (c, t) ->
      u8 op_jcc;
      u8 (cond_code c);
      put_target b t
  | Insn.Jmp t ->
      u8 op_jmp;
      put_target b t
  | Insn.Jmpi r ->
      u8 op_jmpi;
      put_reg b r
  | Insn.Call t ->
      u8 op_call;
      put_target b t
  | Insn.Ret -> u8 op_ret
  | Insn.Push s ->
      u8 op_push;
      put_src b s
  | Insn.Pop d ->
      u8 op_pop;
      put_reg b d

let encode_insn b (insn : Insn.t) =
  if insn.prot then Buffer.add_uint8 b prot_prefix;
  encode_op b insn.op

let encode_program code =
  let b = Buffer.create (16 * Array.length code) in
  Array.iter (encode_insn b) code;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let byte c =
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_reg c = Reg.of_int (byte c)

let get_opt_reg c =
  match byte c with 0xff -> None | n -> Some (Reg.of_int n)

let get_i64 c =
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  v

let get_i32 c =
  let v = Int32.to_int (String.get_int32_le c.s c.pos) in
  c.pos <- c.pos + 4;
  v

let get_src c =
  match byte c with
  | 0 -> Insn.Reg (get_reg c)
  | 1 -> Insn.Imm (get_i64 c)
  | n -> invalid_arg (Printf.sprintf "Encode: bad src tag %d" n)

let get_mem c =
  let base = get_opt_reg c in
  let index = get_opt_reg c in
  let scale = byte c in
  let disp = get_i32 c in
  { Insn.base; index; scale; disp }

let decode_op c =
  let opc = byte c in
  if opc = op_nop then Insn.Nop
  else if opc = op_halt then Insn.Halt
  else if opc = op_mov then
    let w = width_of_code (byte c) in
    let d = get_reg c in
    Insn.Mov (w, d, get_src c)
  else if opc = op_lea then
    let d = get_reg c in
    Insn.Lea (d, get_mem c)
  else if opc = op_load then
    let w = width_of_code (byte c) in
    let d = get_reg c in
    Insn.Load (w, d, get_mem c)
  else if opc = op_store then
    let w = width_of_code (byte c) in
    let m = get_mem c in
    Insn.Store (w, m, get_src c)
  else if opc = op_binop then
    let o = binop_of_code (byte c) in
    let d = get_reg c in
    Insn.Binop (o, d, get_src c)
  else if opc = op_unop then
    let o = match byte c with 0 -> Insn.Not | _ -> Insn.Neg in
    Insn.Unop (o, get_reg c)
  else if opc = op_div then
    let d = get_reg c in
    let n = get_reg c in
    Insn.Div (d, n, get_src c)
  else if opc = op_rem then
    let d = get_reg c in
    let n = get_reg c in
    Insn.Rem (d, n, get_src c)
  else if opc = op_cmp then
    let r = get_reg c in
    Insn.Cmp (r, get_src c)
  else if opc = op_test then
    let r = get_reg c in
    Insn.Test (r, get_src c)
  else if opc = op_setcc then
    let cd = cond_of_code (byte c) in
    Insn.Setcc (cd, get_reg c)
  else if opc = op_cmov then
    let cd = cond_of_code (byte c) in
    let d = get_reg c in
    Insn.Cmov (cd, d, get_src c)
  else if opc = op_jcc then
    let cd = cond_of_code (byte c) in
    Insn.Jcc (cd, get_i32 c)
  else if opc = op_jmp then Insn.Jmp (get_i32 c)
  else if opc = op_jmpi then Insn.Jmpi (get_reg c)
  else if opc = op_call then Insn.Call (get_i32 c)
  else if opc = op_ret then Insn.Ret
  else if opc = op_push then Insn.Push (get_src c)
  else if opc = op_pop then Insn.Pop (get_reg c)
  else invalid_arg (Printf.sprintf "Encode: bad opcode %d" opc)

let decode_insn c =
  let prot = Char.code c.s.[c.pos] = prot_prefix in
  if prot then c.pos <- c.pos + 1;
  let op = decode_op c in
  { Insn.op; prot }

let decode_program s =
  let c = { s; pos = 0 } in
  let rec loop acc =
    if c.pos >= String.length s then Array.of_list (List.rev acc)
    else loop (decode_insn c :: acc)
  in
  loop []

let encoded_size insn =
  let b = Buffer.create 16 in
  encode_insn b insn;
  Buffer.length b

(* ------------------------------------------------------------------ *)
(* Metadata-table encoding (prefix-less ISAs)                         *)
(* ------------------------------------------------------------------ *)

(* The paper notes ProtISA extends to ISAs without instruction prefixes
   by storing PROT bits in a separate instruction metadata table
   (Section IV).  Encode the instructions prefix-free and pack their
   PROT bits one-per-instruction into a side table. *)
let encode_metadata_table code =
  let b = Buffer.create (16 * Array.length code) in
  Array.iter (fun (insn : Insn.t) -> encode_op b insn.Insn.op) code;
  let n = Array.length code in
  let table = Bytes.make ((n + 7) / 8) '\000' in
  Array.iteri
    (fun i (insn : Insn.t) ->
      if insn.Insn.prot then
        Bytes.set table (i / 8)
          (Char.chr (Char.code (Bytes.get table (i / 8)) lor (1 lsl (i mod 8)))))
    code;
  (Buffer.contents b, Bytes.to_string table)

let decode_with_metadata code table =
  let c = { s = code; pos = 0 } in
  let rec loop i acc =
    if c.pos >= String.length code then Array.of_list (List.rev acc)
    else
      let op = decode_op c in
      let prot =
        i / 8 < String.length table
        && Char.code table.[i / 8] land (1 lsl (i mod 8)) <> 0
      in
      loop (i + 1) ({ Insn.op; prot } :: acc)
  in
  loop 0 []
