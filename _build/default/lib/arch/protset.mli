(** Architectural ProtSet tracking (Section IV-B).

    The ProtSet is the set of architectural state elements (registers and
    memory bytes) whose contents a defense promises to keep from leaking
    transiently.  ProtISA makes it software-programmable: PROT-prefixed
    instructions add their output registers; unprefixed instructions
    remove their output registers and any memory bytes they read; stores
    label written bytes with their data operand's protection; unprefixed
    sub-register (W8) writes leave the full register unchanged.

    Initially all memory is protected and all registers unprotected. *)

open Protean_isa

type t

val create : unit -> t
val copy : t -> t

val reg_protected : t -> Reg.t -> bool
val set_reg : t -> Reg.t -> bool -> unit

val mem_byte_protected : t -> int64 -> bool

val mem_protected : t -> int64 -> int -> bool
(** True when {e any} of the [size] bytes at the address is protected. *)

val set_mem : t -> int64 -> int -> protected:bool -> unit

val src_protected : t -> Insn.src -> bool
(** Protection of a source operand (immediates are public). *)

val step : t -> Exec.effect_ -> unit
(** Advance the ProtSet across one architecturally executed instruction. *)

val protected_regs : t -> Reg.t list
