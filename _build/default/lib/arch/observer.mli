(** Observer modes for hardware-software security contracts
    (Section II-C).

    An observer mode defines what architectural state a contract exposes
    at each step of the SEQ execution mode:

    - [Arch_mode] exposes all accessed data (non-secret-accessing code);
    - [Ct_mode] exposes transmitter-sensitive operands: the pc, individual
      address registers (the AMuLeT* refinement), effective addresses,
      branch conditions/targets, and the partial function of division
      operands the divider leaks;
    - [Cts_mode] extends CT with values written to publicly-typed
      registers (per a static secrecy typing);
    - [Unprot_mode] extends CT with values held in ProtISA-unprotected
      registers, for testing arbitrary ProtISA binaries. *)

open Protean_isa

type atom =
  | O_pc of int
  | O_addr_reg of Reg.t * int64
  | O_addr of int64
  | O_branch of bool * int
  | O_div of int * int * bool
      (** bit-length of dividend/divisor, divisor-is-zero *)
  | O_data of int64
  | O_reg of Reg.t * int64

val atom_equal : atom -> atom -> bool
val pp_atom : Format.formatter -> atom -> unit

type typing = (int, Reg.t list) Hashtbl.t
(** Static secrecy typing: per pc, the output registers publicly typed at
    that definition (produced by ProtCC-CTS). *)

type mode = Arch_mode | Ct_mode | Cts_mode of typing | Unprot_mode

val mode_name : mode -> string

val ct_atoms : regv:(Reg.t -> int64) -> Exec.effect_ -> atom list
(** The observations every mode shares (control flow and transmitter
    operands); [regv] reads a register value {e before} the step. *)

val observe :
  mode -> regv:(Reg.t -> int64) -> protset:Protset.t -> Exec.effect_ -> atom list
(** Observe one architectural step; [protset] must reflect the state
    {e after} the step for [Unprot_mode]. *)
