(** SEQ-execution-mode contract traces (Section II-C).

    A contract trace is the sequence of observations an observer mode
    exposes along the sequential execution of a program.  Two inputs are
    contract-equivalent when their traces are equal; a microarchitecture
    upholds the contract when contract-equivalent inputs are also
    indistinguishable to the adversary model. *)

type trace = Observer.atom array

type result = {
  trace : trace;
  final : Exec.state;
  steps : int;
  exhausted : bool;  (** ran out of fuel before halting *)
}

val run :
  ?fuel:int ->
  Observer.mode ->
  Protean_isa.Program.t ->
  overlays:(int64 * string) list ->
  result

val traces_equal : trace -> trace -> bool

val first_divergence : trace -> trace -> int option
(** First index where two traces diverge, for diagnostics. *)

val pp_trace : Format.formatter -> trace -> unit
