(* SEQ-execution-mode contract traces (Section II-C).

   A contract trace is the sequence of observations an observer mode
   exposes along the sequential execution of a program.  Two inputs are
   contract-equivalent when their traces are equal; a microarchitecture
   upholds the contract if contract-equivalent inputs are also
   indistinguishable to the adversary model. *)

open Protean_isa

type trace = Observer.atom array

type result = {
  trace : trace;
  final : Exec.state;
  steps : int;
  exhausted : bool; (* ran out of fuel before halting *)
}

(* Run [program] with the given memory [overlays] (e.g. secret inputs)
   under [mode], collecting the contract trace. *)
let run ?(fuel = 200_000) mode (program : Program.t) ~overlays =
  let state = Exec.init program in
  Exec.overlay state overlays;
  let protset = Protset.create () in
  let acc = ref [] in
  let rec loop n =
    if n <= 0 || state.Exec.halted then n
    else begin
      (* Capture pre-step register values for address-register atoms. *)
      let pre = Array.copy state.Exec.regs in
      let regv r = pre.(Reg.to_int r) in
      let eff = Exec.step program state in
      Protset.step protset eff;
      let atoms = Observer.observe mode ~regv ~protset eff in
      acc := List.rev_append atoms !acc;
      loop (n - 1)
    end
  in
  let remaining = loop fuel in
  {
    trace = Array.of_list (List.rev !acc);
    final = state;
    steps = state.Exec.steps;
    exhausted = (remaining <= 0 && not state.Exec.halted);
  }

let traces_equal (a : trace) (b : trace) =
  Array.length a = Array.length b
  && (let n = Array.length a in
      let rec loop i = i >= n || (Observer.atom_equal a.(i) b.(i) && loop (i + 1)) in
      loop 0)

(* First index where the traces diverge, for diagnostics. *)
let first_divergence (a : trace) (b : trace) =
  let n = min (Array.length a) (Array.length b) in
  let rec loop i =
    if i >= n then if Array.length a <> Array.length b then Some n else None
    else if Observer.atom_equal a.(i) b.(i) then loop (i + 1)
    else Some i
  in
  loop 0

let pp_trace fmt (t : trace) =
  Array.iteri (fun i a -> Format.fprintf fmt "%4d %a@." i Observer.pp_atom a) t
