(* Architectural ProtSet tracking (Section IV-B).

   The ProtSet is the set of architectural state elements (registers and
   memory bytes) whose contents a defense promises to keep from leaking
   transiently.  ProtISA makes it software-programmable:

   - PROT-prefixed instructions add their output registers to the set;
   - unprefixed instructions remove their output registers, and any memory
     bytes they read, from the set;
   - stores label written bytes with the protection of their data operand;
   - sub-register (W8) writes leave the full register's protection
     unchanged when unprefixed and protect it when PROT-prefixed.

   Initially all memory is protected and all registers are unprotected
   (registers hold the public initial inputs; memory may hold secrets). *)

open Protean_isa

type t = {
  reg : bool array; (* per architectural register *)
  mem_unprot : (int64, Bytes.t) Hashtbl.t;
      (* pages of 0/1 bytes: 1 = unprotected.  Absent page = protected. *)
}

let create () =
  let reg = Array.make Reg.count false in
  { reg; mem_unprot = Hashtbl.create 64 }

let copy t = { reg = Array.copy t.reg; mem_unprot = Hashtbl.copy t.mem_unprot }

let reg_protected t r = t.reg.(Reg.to_int r)
let set_reg t r v = t.reg.(Reg.to_int r) <- v

let page_of addr = Int64.shift_right_logical addr 12
let offset_of addr = Int64.to_int (Int64.logand addr 0xfffL)

let mem_byte_protected t addr =
  match Hashtbl.find_opt t.mem_unprot (page_of addr) with
  | None -> true
  | Some p -> Bytes.get p (offset_of addr) = '\000'

let set_mem_byte t addr ~protected =
  let page =
    match Hashtbl.find_opt t.mem_unprot (page_of addr) with
    | Some p -> p
    | None ->
        let p = Bytes.make 4096 '\000' in
        Hashtbl.replace t.mem_unprot (page_of addr) p;
        p
  in
  Bytes.set page (offset_of addr) (if protected then '\000' else '\001')

let mem_protected t addr size =
  let rec loop i =
    if i >= size then false
    else
      mem_byte_protected t (Int64.add addr (Int64.of_int i)) || loop (i + 1)
  in
  loop 0

let set_mem t addr size ~protected =
  for i = 0 to size - 1 do
    set_mem_byte t (Int64.add addr (Int64.of_int i)) ~protected
  done

let src_protected t = function
  | Insn.Reg r -> reg_protected t r
  | Insn.Imm _ -> false

(* Is the write to [r] by [insn] a sub-register (merging) write? *)
let is_subreg_write (insn : Insn.t) r =
  match insn.op with
  | Insn.Mov (Insn.W8, d, _) | Insn.Load (Insn.W8, d, _) -> Reg.equal d r
  | _ -> false

(* Advance the ProtSet across one architecturally-executed instruction. *)
let step t (eff : Exec.effect_) =
  let insn = eff.e_insn in
  (* Memory bytes written by stores take the protection of the data
     operand; this happens before register updates so push/call use the
     pre-instruction register protections. *)
  (match (insn.op, eff.e_store) with
  | Insn.Store (_, _, s), Some (addr, size, _) ->
      set_mem t addr size ~protected:(src_protected t s)
  | Insn.Push s, Some (addr, size, _) ->
      set_mem t addr size ~protected:(src_protected t s)
  | Insn.Call _, Some (addr, size, _) ->
      (* The pushed return address is program-counter data: public. *)
      set_mem t addr size ~protected:false
  | _ -> ());
  (* Unprefixed instructions unprotect the memory bytes they read. *)
  (match eff.e_load with
  | Some (addr, size, _) when not insn.prot -> set_mem t addr size ~protected:false
  | _ -> ());
  (* Output registers. *)
  List.iter
    (fun r ->
      if insn.prot then set_reg t r true
      else if not (is_subreg_write insn r) then set_reg t r false)
    (Insn.writes insn.op)

let protected_regs t =
  List.filter (fun r -> reg_protected t r) Reg.all
