(** Sparse byte-addressable memory, stored as 4-KiB pages.

    Unmapped bytes read as zero, so transient wrong-path accesses to
    arbitrary addresses are always well-defined.  Values are little-endian. *)

type t

val create : unit -> t
val page_of : int64 -> int64
val offset_of : int64 -> int

val read_byte : t -> int64 -> int
val write_byte : t -> int64 -> int -> unit

val read : t -> int64 -> int -> int64
(** [read t addr size] reads [size] (≤ 8) little-endian bytes. *)

val write : t -> int64 -> int -> int64 -> unit
val write_string : t -> int64 -> string -> unit
val read_string : t -> int64 -> int -> string

val copy : t -> t
val clear : t -> unit
val iter_pages : t -> (int64 -> Bytes.t -> unit) -> unit
