(** Pure instruction semantics shared by the sequential architectural
    executor and the out-of-order pipeline.

    Flags are packed into an [int64] so the flags register lives in the
    ordinary register file. *)

open Protean_isa

val zf_bit : int
val sf_bit : int
val cf_bit : int
val of_bit : int

val flag : int64 -> int -> bool
val pack : zf:bool -> sf:bool -> cf:bool -> ov:bool -> int64
val flags_of_result : ?cf:bool -> ?ov:bool -> int64 -> int64

val ucompare : int64 -> int64 -> int

val eval_cond : Insn.cond -> int64 -> bool
(** Evaluate a branch condition against a packed flags value. *)

val eval_binop : Insn.binop -> int64 -> int64 -> int64 * int64
(** [(result, flags)]. *)

val eval_unop : Insn.unop -> int64 -> int64 * int64
val eval_cmp : int64 -> int64 -> int64
val eval_test : int64 -> int64 -> int64

val eval_div : int64 -> int64 -> int64
(** Unsigned division; the caller checks for a zero divisor (fault). *)

val eval_rem : int64 -> int64 -> int64

val apply_width : Insn.width -> old:int64 -> int64 -> int64
(** Register write of a given width: [W32] zero-extends (x86-64
    semantics — the source of SPT's 32-bit untaint performance issue,
    Section VII-B4c); [W8] merges into the low byte. *)

val truncate_width : Insn.width -> int64 -> int64
val effective_address : (Reg.t -> int64) -> Insn.mem -> int64

val bit_length : int64 -> int
(** Number of significant bits: the operand-dependent component of
    division latency, and the function of division operands the CT
    observer exposes (partial transmission, Section II-B1). *)

val div_latency : int64 -> int64 -> int
