lib/arch/exec.mli: Insn Memory Program Protean_isa Reg
