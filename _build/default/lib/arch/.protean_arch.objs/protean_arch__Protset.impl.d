lib/arch/protset.ml: Array Bytes Exec Hashtbl Insn Int64 List Protean_isa Reg
