lib/arch/memory.mli: Bytes
