lib/arch/exec.ml: Array Insn Int64 List Memory Program Protean_isa Reg Sem
