lib/arch/observer.mli: Exec Format Hashtbl Protean_isa Protset Reg
