lib/arch/sem.ml: Insn Int64 Protean_isa
