lib/arch/protset.mli: Exec Insn Protean_isa Reg
