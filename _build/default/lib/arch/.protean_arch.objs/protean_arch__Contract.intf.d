lib/arch/contract.mli: Exec Format Observer Protean_isa
