lib/arch/sem.mli: Insn Protean_isa Reg
