lib/arch/memory.ml: Bytes Char Hashtbl Int64 String
