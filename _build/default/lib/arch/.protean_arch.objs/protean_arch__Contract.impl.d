lib/arch/contract.ml: Array Exec Format List Observer Program Protean_isa Protset Reg
