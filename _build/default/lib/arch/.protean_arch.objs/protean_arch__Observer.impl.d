lib/arch/observer.ml: Exec Format Hashtbl Insn Int64 List Option Protean_isa Protset Reg Sem
