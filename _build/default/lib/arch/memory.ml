(* Sparse byte-addressable memory, stored as 4-KiB pages.  Unmapped bytes
   read as zero, so transient wrong-path accesses to arbitrary addresses
   are always well-defined. *)

let page_bits = 12
let page_size = 1 lsl page_bits

type t = { pages : (int64, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let page_of addr = Int64.shift_right_logical addr page_bits
let offset_of addr = Int64.to_int (Int64.logand addr 0xfffL)

let find_page t pn = Hashtbl.find_opt t.pages pn

let get_page t pn =
  match Hashtbl.find_opt t.pages pn with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace t.pages pn p;
      p

let read_byte t addr =
  match find_page t (page_of addr) with
  | None -> 0
  | Some p -> Char.code (Bytes.get p (offset_of addr))

let write_byte t addr v =
  let p = get_page t (page_of addr) in
  Bytes.set p (offset_of addr) (Char.chr (v land 0xff))

let read t addr size =
  let rec loop i acc =
    if i < 0 then acc
    else
      let b = read_byte t (Int64.add addr (Int64.of_int i)) in
      loop (i - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int b))
  in
  loop (size - 1) 0L

let write t addr size v =
  for i = 0 to size - 1 do
    let b =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)
    in
    write_byte t (Int64.add addr (Int64.of_int i)) b
  done

let write_string t addr s =
  String.iteri
    (fun i c -> write_byte t (Int64.add addr (Int64.of_int i)) (Char.code c))
    s

let read_string t addr len =
  String.init len (fun i ->
      Char.chr (read_byte t (Int64.add addr (Int64.of_int i))))

let copy t =
  let pages = Hashtbl.copy t.pages in
  Hashtbl.iter (fun k v -> Hashtbl.replace pages k (Bytes.copy v)) t.pages;
  { pages }

let clear t = Hashtbl.reset t.pages

let iter_pages t f = Hashtbl.iter f t.pages
