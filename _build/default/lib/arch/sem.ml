(* Pure instruction semantics shared by the sequential architectural
   executor and the out-of-order pipeline.  Flags are packed into an int64
   so the flags register lives in the ordinary register file. *)

open Protean_isa

(* Flag bits. *)
let zf_bit = 0
let sf_bit = 1
let cf_bit = 2
let of_bit = 3

let flag v bit = Int64.logand (Int64.shift_right_logical v bit) 1L = 1L

let pack ~zf ~sf ~cf ~ov =
  let b c bit = if c then Int64.shift_left 1L bit else 0L in
  Int64.logor
    (Int64.logor (b zf zf_bit) (b sf sf_bit))
    (Int64.logor (b cf cf_bit) (b ov of_bit))

let flags_of_result ?(cf = false) ?(ov = false) r =
  pack ~zf:(Int64.equal r 0L) ~sf:(Int64.compare r 0L < 0) ~cf ~ov

(* Unsigned comparison of int64 values. *)
let ucompare = Int64.unsigned_compare

let eval_cond c flags =
  let zf = flag flags zf_bit in
  let sf = flag flags sf_bit in
  let cf = flag flags cf_bit in
  let ov = flag flags of_bit in
  match c with
  | Insn.Z -> zf
  | Insn.Nz -> not zf
  | Insn.Lt -> sf <> ov
  | Insn.Le -> zf || sf <> ov
  | Insn.Gt -> (not zf) && sf = ov
  | Insn.Ge -> sf = ov
  | Insn.B -> cf
  | Insn.Be -> cf || zf
  | Insn.A -> (not cf) && not zf
  | Insn.Ae -> not cf

let eval_binop op a b =
  match op with
  | Insn.Add ->
      let r = Int64.add a b in
      let cf = ucompare r a < 0 in
      let ov =
        Int64.compare a 0L < 0 = (Int64.compare b 0L < 0)
        && Int64.compare r 0L < 0 <> (Int64.compare a 0L < 0)
      in
      (r, flags_of_result ~cf ~ov r)
  | Insn.Sub ->
      let r = Int64.sub a b in
      let cf = ucompare a b < 0 in
      let ov =
        Int64.compare a 0L < 0 <> (Int64.compare b 0L < 0)
        && Int64.compare r 0L < 0 <> (Int64.compare a 0L < 0)
      in
      (r, flags_of_result ~cf ~ov r)
  | Insn.And ->
      let r = Int64.logand a b in
      (r, flags_of_result r)
  | Insn.Or ->
      let r = Int64.logor a b in
      (r, flags_of_result r)
  | Insn.Xor ->
      let r = Int64.logxor a b in
      (r, flags_of_result r)
  | Insn.Shl ->
      let r = Int64.shift_left a (Int64.to_int (Int64.logand b 63L)) in
      (r, flags_of_result r)
  | Insn.Shr ->
      let r = Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L)) in
      (r, flags_of_result r)
  | Insn.Sar ->
      let r = Int64.shift_right a (Int64.to_int (Int64.logand b 63L)) in
      (r, flags_of_result r)
  | Insn.Mul ->
      let r = Int64.mul a b in
      (r, flags_of_result r)

let eval_unop op a =
  match op with
  | Insn.Not ->
      let r = Int64.lognot a in
      (r, flags_of_result r)
  | Insn.Neg ->
      let r = Int64.neg a in
      (r, flags_of_result ~cf:(not (Int64.equal a 0L)) r)

let eval_cmp a b = snd (eval_binop Insn.Sub a b)
let eval_test a b = flags_of_result (Int64.logand a b)

(* Unsigned division; the caller checks for a zero divisor (fault). *)
let eval_div n d = Int64.unsigned_div n d
let eval_rem n d = Int64.unsigned_rem n d

(* Register write of a given width.  [W32] zero-extends (x86-64 semantics,
   the source of SPT's 32-bit untaint performance issue, Section
   VII-B4c); [W8] merges into the low byte. *)
let apply_width w ~old v =
  match w with
  | Insn.W64 -> v
  | Insn.W32 -> Int64.logand v 0xffffffffL
  | Insn.W8 ->
      Int64.logor
        (Int64.logand old (Int64.lognot 0xffL))
        (Int64.logand v 0xffL)

(* Truncate a loaded value to its width (zero-extension for W8/W32 loads
   happens via [apply_width] + this truncation). *)
let truncate_width w v =
  match w with
  | Insn.W64 -> v
  | Insn.W32 -> Int64.logand v 0xffffffffL
  | Insn.W8 -> Int64.logand v 0xffL

let effective_address read (m : Insn.mem) =
  let base = match m.base with Some r -> read r | None -> 0L in
  let index =
    match m.index with
    | Some r -> Int64.mul (read r) (Int64.of_int m.scale)
    | None -> 0L
  in
  Int64.add (Int64.add base index) (Int64.of_int m.disp)

(* Number of significant bits of a value: the operand-dependent component
   of division latency, and the function of division operands exposed by
   the CT observer (partial transmission, Section II-B1). *)
let bit_length v =
  let rec loop v n = if Int64.equal v 0L then n else loop (Int64.shift_right_logical v 1) (n + 1) in
  loop v 0

(* Division latency on the modelled core: a fixed cost plus an early-exit
   component that depends on the dividend's magnitude. *)
let div_latency n d =
  let base = 12 in
  if Int64.equal d 0L then base
  else base + (bit_length n / 8)
