(* Observer modes for hardware-software security contracts (Section II-C).

   An observer mode defines what architectural state a contract exposes at
   each execution step of the SEQ execution mode:

   - ARCH   exposes all accessed data (the assumption made by
            non-secret-accessing code);
   - CT     exposes the sensitive operands of transmitters: the program
            counter, individual address registers (the AMuLeT* refinement),
            effective addresses, branch conditions/targets, and the partial
            function of division operands that the divider leaks;
   - CTS    extends CT with the values written to publicly-typed registers
            (per a static secrecy typing);
   - UNPROT extends CT with the values held in ProtISA-unprotected
            registers, for testing arbitrary ProtISA binaries. *)

open Protean_isa

type atom =
  | O_pc of int
  | O_addr_reg of Reg.t * int64
  | O_addr of int64
  | O_branch of bool * int
  | O_div of int * int * bool (* bit-length of dividend/divisor, divisor=0 *)
  | O_data of int64
  | O_reg of Reg.t * int64

let atom_equal (a : atom) (b : atom) = a = b

let pp_atom fmt = function
  | O_pc pc -> Format.fprintf fmt "pc:%d" pc
  | O_addr_reg (r, v) -> Format.fprintf fmt "areg:%a=%Ld" Reg.pp r v
  | O_addr a -> Format.fprintf fmt "addr:%Ld" a
  | O_branch (t, tgt) -> Format.fprintf fmt "br:%b->%d" t tgt
  | O_div (n, d, z) -> Format.fprintf fmt "div:%d/%d%s" n d (if z then "!" else "")
  | O_data v -> Format.fprintf fmt "data:%Ld" v
  | O_reg (r, v) -> Format.fprintf fmt "reg:%a=%Ld" Reg.pp r v

(* A static secrecy typing: for each pc, the output registers that are
   publicly typed at that definition (produced by ProtCC-CTS). *)
type typing = (int, Reg.t list) Hashtbl.t

type mode =
  | Arch_mode
  | Ct_mode
  | Cts_mode of typing
  | Unprot_mode

let mode_name = function
  | Arch_mode -> "ARCH"
  | Ct_mode -> "CT"
  | Cts_mode _ -> "CTS"
  | Unprot_mode -> "UNPROT"

(* Observations every mode shares: control flow and transmitter operands.
   [regv] reads a register value *before* the instruction executed. *)
let ct_atoms ~regv (eff : Exec.effect_) =
  let insn = eff.e_insn in
  let acc = ref [ O_pc eff.e_pc ] in
  let push a = acc := a :: !acc in
  (* Individual address registers of memory operands. *)
  List.iter
    (fun (r, role) ->
      match role with
      | Insn.Addr -> push (O_addr_reg (r, regv r))
      | Insn.Target -> push (O_addr_reg (r, regv r))
      | Insn.Data | Insn.Cond_in | Insn.Divide -> ())
    (Insn.reads insn.op);
  (match eff.e_load with Some (a, _, _) -> push (O_addr a) | None -> ());
  (match eff.e_store with Some (a, _, _) -> push (O_addr a) | None -> ());
  (match eff.e_branch with
  | Some (taken, target) -> push (O_branch (taken, target))
  | None -> ());
  (match eff.e_div with
  | Some (n, d) ->
      push (O_div (Sem.bit_length n, Sem.bit_length d, Int64.equal d 0L))
  | None -> ());
  List.rev !acc

(* Observe one architectural step.  [protset] must be the ProtSet state
   *after* the step for [Unprot_mode] (unprotected outputs are exposed). *)
let observe mode ~regv ~protset (eff : Exec.effect_) =
  let base = ct_atoms ~regv eff in
  match mode with
  | Ct_mode -> base
  | Arch_mode ->
      let data =
        List.filter_map
          (fun x -> x)
          [
            Option.map (fun (_, _, v) -> O_data v) eff.e_load;
            Option.map (fun (_, _, v) -> O_data v) eff.e_store;
          ]
      in
      base @ data
  | Cts_mode typing ->
      let public =
        match Hashtbl.find_opt typing eff.e_pc with
        | None -> []
        | Some regs ->
            List.filter_map
              (fun (r, v) ->
                if List.exists (Reg.equal r) regs then Some (O_reg (r, v))
                else None)
              eff.e_written
      in
      base @ public
  | Unprot_mode ->
      let unprot =
        List.filter_map
          (fun (r, v) ->
            if Protset.reg_protected protset r then None else Some (O_reg (r, v)))
          eff.e_written
      in
      base @ unprot
