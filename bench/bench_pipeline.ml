(* Pipeline micro-benchmark: simulation throughput of the stage-module
   pipeline, and the parallel-grid scaling of `-j N`.

     dune exec bench/bench_pipeline.exe            # writes BENCH_pipeline.json
     dune exec bench/bench_pipeline.exe -- out.json

   Two measurements:

   - single: the UNR workload (ossl.bnexp compiled with ProtCC-UNR,
     ProtTrack defense, P-core) on one domain — simulated cycles per
     wall-clock second, the basic cost of a pipeline step;
   - grid: the golden corpus (44 mixed single/multicore cells) at
     -j 1/2/4, asserting the lines are identical at every width and
     recording wall-clock speedup over serial.

   Speedups are only meaningful relative to the `topology` block (a
   1-core container can verify determinism but not show speedup; extra
   domains there cost minor-GC barrier synchronization instead, and
   extra --shards workers time-slice one core).  The block records the
   host core count plus the shard/worker layout a supervised
   (`--shards N -j M`) run would use, so a stored JSON says whether its
   numbers are a performance measurement or a determinism check. *)

module Suite = Protean_workloads.Suite
module Protcc = Protean_protcc.Protcc
module Defense = Protean_defense.Defense
module Config = Protean_ooo.Config
module Pipeline = Protean_ooo.Pipeline
module Stats = Protean_ooo.Stats
module Golden = Protean_harness.Golden

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let bench_single () =
  let b = Suite.find "ossl.bnexp" in
  let program =
    match b.Suite.kind with
    | Suite.Single f -> (Protcc.instrument ~pass_override:Protcc.P_unr (f ())).Protcc.program
    | Suite.Multi _ -> assert false
  in
  let d = Defense.find "prot-track" in
  (* One warm-up run so the measurement excludes first-touch costs. *)
  let run () =
    Pipeline.run ~fuel:30_000_000 Config.p_core (d.Defense.make ()) program
      ~overlays:[]
  in
  ignore (run ());
  let r, wall = timed run in
  let cycles = r.Pipeline.stats.Stats.cycles in
  let committed = r.Pipeline.stats.Stats.committed in
  Printf.printf "single: %d cycles, %d committed in %.3fs (%.0f cycles/s)\n%!"
    cycles committed wall
    (float_of_int cycles /. wall);
  (cycles, committed, wall)

let bench_grid () =
  let baseline, t1 = timed (fun () -> Golden.lines ()) in
  Printf.printf "grid: -j 1 %.3fs (%d cells)\n%!" t1 (List.length baseline);
  let points =
    List.map
      (fun jobs ->
        let lines, tj = timed (fun () -> Golden.lines ~jobs ()) in
        let identical = lines = baseline in
        Printf.printf "grid: -j %d %.3fs speedup %.2f identical %b\n%!" jobs
          tj (t1 /. tj) identical;
        if not identical then failwith "parallel grid diverged from serial";
        (jobs, tj, t1 /. tj))
      [ 2; 4 ]
  in
  (List.length baseline, t1, points)

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_pipeline.json" in
  let cycles, committed, wall = bench_single () in
  let cells, t1, points = bench_grid () in
  let oc = open_out out in
  let host_cores = Domain.recommended_domain_count () in
  (* The canonical supervised layout: workers × domains-per-worker,
     capped by the host.  total_lanes = host_cores means real
     parallelism; total_lanes > host_cores means the run exercises the
     machinery (determinism, crash recovery) without speedup. *)
  let shards = min 2 host_cores in
  let jobs_per_worker = max 1 (host_cores / shards) in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"host_cores\": %d,\n" host_cores;
  Printf.fprintf oc "  \"topology\": {\n";
  Printf.fprintf oc "    \"host_cores\": %d, \"default_jobs\": %d,\n" host_cores
    (Protean_harness.Parallel.default_jobs ());
  Printf.fprintf oc "    \"spawn_available\": %b,\n"
    (Protean_harness.Shard.can_spawn ());
  Printf.fprintf oc "    \"shards\": %d, \"jobs_per_worker\": %d, \"total_lanes\": %d,\n"
    shards jobs_per_worker (shards * jobs_per_worker);
  Printf.fprintf oc "    \"speedups_meaningful\": %b\n" (host_cores > 1);
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"single\": {\n";
  Printf.fprintf oc "    \"bench\": \"ossl.bnexp\", \"pass\": \"unr\", \"defense\": \"prot-track\", \"core\": \"p\",\n";
  Printf.fprintf oc "    \"cycles\": %d, \"committed\": %d, \"wall_s\": %.3f,\n" cycles committed wall;
  Printf.fprintf oc "    \"cycles_per_sec\": %.0f\n" (float_of_int cycles /. wall);
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"grid\": {\n";
  Printf.fprintf oc "    \"corpus\": \"golden\", \"cells\": %d, \"serial_wall_s\": %.3f,\n" cells t1;
  Printf.fprintf oc "    \"parallel\": [\n";
  List.iteri
    (fun i (jobs, tj, sp) ->
      Printf.fprintf oc "      {\"jobs\": %d, \"wall_s\": %.3f, \"speedup\": %.2f, \"identical\": true}%s\n"
        jobs tj sp
        (if i = List.length points - 1 then "" else ","))
    points;
  Printf.fprintf oc "    ]\n  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out
