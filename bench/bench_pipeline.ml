(* Pipeline micro-benchmark: simulation throughput of the stage-module
   pipeline, the hot-loop cost model, and the parallel-grid scaling of
   `-j N`.

     dune exec bench/bench_pipeline.exe            # writes BENCH_pipeline.json
     dune exec bench/bench_pipeline.exe -- out.json
     dune exec bench/bench_pipeline.exe -- --smoke # CI smoke: identity + alloc ceiling

   Measurements:

   - single: the UNR workload (ossl.bnexp compiled with ProtCC-UNR,
     ProtTrack defense, P-core) on one domain — simulated cycles per
     wall-clock second including pipeline construction, the end-to-end
     cost of an experiment cell;
   - hotloop: the same workload with construction excluded — loop-only
     cycles/second, minor GC words allocated per simulated cycle
     (Gc.quick_stat deltas around the step loop), the per-stage
     wall-clock breakdown from the [Profile] observer, and the overhead
     the profiler itself adds (the off-path must stay measurably free);
   - grid: the golden corpus (44 mixed single/multicore cells) at
     -j 1/2/4, asserting the lines are identical at every width and
     recording wall-clock speedup over serial.

   `--smoke` is the CI guard: it replays a reduced prefix of the golden
   corpus against test/golden_pipeline.expected (bit-identity) and
   fails if minor words per cycle exceed the checked-in ceiling in
   bench/hotloop_ceiling.txt — an allocation regression in the cycle
   loop breaks the build before it breaks throughput.

   Speedups are only meaningful relative to the `topology` block (a
   1-core container can verify determinism but not show speedup; extra
   domains there cost minor-GC barrier synchronization instead, and
   extra --shards workers time-slice one core).  The block records the
   host core count plus the shard/worker layout a supervised
   (`--shards N -j M`) run would use, so a stored JSON says whether its
   numbers are a performance measurement or a determinism check. *)

module Suite = Protean_workloads.Suite
module Protcc = Protean_protcc.Protcc
module Defense = Protean_defense.Defense
module Config = Protean_ooo.Config
module Pipeline = Protean_ooo.Pipeline
module Profile = Protean_ooo.Profile
module Stats = Protean_ooo.Stats
module Golden = Protean_harness.Golden
module Report = Protean_harness.Report
module Spec_window = Protean_ooo.Spec_window

(* Host/build provenance, same labels as the `protean_build_info` metric:
   a stored BENCH_pipeline.json identifies the machine, compiler, source
   revision and active escape hatches that produced its numbers. *)
let build_info_json oc =
  Printf.fprintf oc "  \"build_info\": {%s}"
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" k (String.escaped v))
          (Report.build_info_labels ())))

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let fuel = 30_000_000

let unr_workload () =
  let b = Suite.find "ossl.bnexp" in
  match b.Suite.kind with
  | Suite.Single f ->
      (Protcc.instrument ~pass_override:Protcc.P_unr (f ())).Protcc.program
  | Suite.Multi _ -> assert false

let bench_single program =
  let d = Defense.find "prot-track" in
  (* One warm-up run so the measurement excludes first-touch costs. *)
  let run () =
    Pipeline.run ~fuel Config.p_core (d.Defense.make ()) program ~overlays:[]
  in
  ignore (run ());
  let r, wall = timed run in
  let cycles = r.Pipeline.stats.Stats.cycles in
  let committed = r.Pipeline.stats.Stats.committed in
  Printf.printf "single: %d cycles, %d committed in %.3fs (%.0f cycles/s)\n%!"
    cycles committed wall
    (float_of_int cycles /. wall);
  (cycles, committed, wall)

(* Drive a pre-built pipeline to completion: the loop the interest mask,
   the O(active) scheduler, event-driven skip-ahead and the allocation
   diet optimize.  [~until] opts the stepper into skip-ahead, exactly as
   [Pipeline.run] does. *)
let drive t =
  while (not (Pipeline.is_done t)) && t.Protean_ooo.Pipeline_state.cycle < fuel do
    Pipeline.step ~until:fuel t
  done

type hotloop = {
  hl_cycles : int;
  hl_loop_wall : float; (* step loop only, construction excluded *)
  hl_minor_words_per_cycle : float;
  hl_profiler_overhead : float; (* (profiled - plain) / plain wall *)
  hl_stages : (string * float * float) list; (* name, seconds, share *)
}

let bench_hotloop ?(config = Config.p_core) ?(label = "hotloop") program =
  let d = Defense.find "prot-track" in
  let make () =
    Pipeline.create config (d.Defense.make ()) program ~overlays:[]
  in
  (* Warm-up: enough drives to fault in code paths, size the minor heap
     and settle branch predictors — one run lasts ~10 ms, so a handful
     of milliseconds-cheap repetitions is what moves the best case from
     "cold" to "steady state". *)
  for _ = 1 to 20 do
    drive (make ())
  done;
  (* Loop-only wall clock and allocation rate.  Gc.quick_stat reads the
     allocation pointer without walking the heap, so the probe itself is
     cheap and allocation-free.  The wall clock is the best of a hundred
     runs (fresh pipeline each): a ~10 ms run on a shared runner is
     hostage to scheduler noise, so the minimum is the honest
     steady-state figure — the same treatment
     [bench_telemetry_detached] already applies, with more repetitions
     because this number gates CI. *)
  let t = make () in
  (* [Gc.minor_words] reads the allocation pointer exactly; the
     [Gc.quick_stat] counters only refresh at collection boundaries, so
     with the tuned (large) nursery a whole run can fit between
     collections and quick_stat deltas would under- or over-count. *)
  let g0 = Gc.minor_words () in
  let (), w0 = timed (fun () -> drive t) in
  let g1 = Gc.minor_words () in
  let loop_wall =
    List.fold_left min w0
      (List.init 99 (fun _ ->
           let t = make () in
           snd (timed (fun () -> drive t))))
  in
  let cycles = t.Protean_ooo.Pipeline_state.cycle in
  let mwpc = (g1 -. g0) /. float_of_int cycles in
  (* Profiled runs: per-stage breakdown, and the cost of profiling
     (best-of-3 against the best plain wall; the profiler accumulates
     across runs and [stage_breakdown] normalizes to shares). *)
  let p = Profile.create () in
  let prof_wall =
    List.fold_left min infinity
      (List.init 3 (fun _ ->
           let tp = make () in
           Profile.attach p tp;
           snd (timed (fun () -> drive tp))))
  in
  let overhead = (prof_wall -. loop_wall) /. loop_wall in
  Printf.printf
    "%s: %d cycles in %.4fs loop-only (%.0f cycles/s), %.0f minor words/cycle\n%!"
    label cycles loop_wall
    (float_of_int cycles /. loop_wall)
    mwpc;
  List.iter
    (fun (name, s, share) ->
      Printf.printf "%s:   %-10s %.4fs (%.0f%%)\n%!" label name s (share *. 100.))
    (Profile.stage_breakdown p);
  Printf.printf "%s: profiler overhead %.0f%%\n%!" label (overhead *. 100.);
  {
    hl_cycles = cycles;
    hl_loop_wall = loop_wall;
    hl_minor_words_per_cycle = mwpc;
    hl_profiler_overhead = overhead;
    hl_stages = Profile.stage_breakdown p;
  }

(* Telemetry-detached throughput: the collection switches flipped on
   (exactly what `--metrics-out` does in a worker process) but no
   profiler attached and no exporter draining anything.  Nothing in the
   cycle path reads the switches — only [Experiment]'s attach points do
   — so the loop must be unchanged; this measurement guards that the
   telemetry layer stays free when detached.  Best-of-3 on each side to
   keep the ratio out of scheduler noise. *)
type telemetry_overhead = {
  to_plain_wall : float;
  to_detached_wall : float;
  to_ratio : float; (* (detached - plain) / plain *)
}

let bench_telemetry_detached program =
  let d = Defense.find "prot-track" in
  let make () =
    Pipeline.create Config.p_core (d.Defense.make ()) program ~overlays:[]
  in
  (* Best-of-10 per side: the skip-ahead + GC-tuned loop finishes this
     workload in single-digit milliseconds, so a best-of-3 delta gated
     CI on scheduler noise. *)
  let best f =
    List.fold_left min infinity
      (List.init 10 (fun _ -> snd (timed (fun () -> drive (f ())))))
  in
  for _ = 1 to 5 do
    drive (make ())
  done;
  let plain = best make in
  Protean_harness.Experiment.collect_policy_metrics := true;
  Protean_harness.Experiment.collect_flame := true;
  let detached = best make in
  Protean_harness.Experiment.collect_policy_metrics := false;
  Protean_harness.Experiment.collect_flame := false;
  let ratio = (detached -. plain) /. plain in
  Printf.printf
    "telemetry: detached %.4fs vs plain %.4fs (overhead %+.1f%%)\n%!"
    detached plain (ratio *. 100.);
  { to_plain_wall = plain; to_detached_wall = detached; to_ratio = ratio }

let telemetry_json oc (t : telemetry_overhead) =
  Printf.fprintf oc "  \"telemetry\": {\n";
  Printf.fprintf oc
    "    \"plain_wall_s\": %.4f, \"detached_wall_s\": %.4f,\n" t.to_plain_wall
    t.to_detached_wall;
  Printf.fprintf oc "    \"detached_overhead\": %.4f\n" t.to_ratio;
  Printf.fprintf oc "  }"

(* On a single-core host the timed -j sweep is meaningless — every lane
   multiplexes one CPU and any "speedup" is scheduler noise — so there
   the determinism diff still runs (parallel results must stay
   bit-identical to serial) but the timings are not reported as a sweep;
   the JSON says why. *)
let bench_grid () =
  let sweep_timed = Domain.recommended_domain_count () > 1 in
  let baseline, t1 = timed (fun () -> Golden.lines ()) in
  Printf.printf "grid: -j 1 %.3fs (%d cells)\n%!" t1 (List.length baseline);
  let points =
    List.map
      (fun jobs ->
        let lines, tj = timed (fun () -> Golden.lines ~jobs ()) in
        let identical = lines = baseline in
        if sweep_timed then
          Printf.printf "grid: -j %d %.3fs speedup %.2f identical %b\n%!" jobs
            tj (t1 /. tj) identical
        else
          Printf.printf
            "grid: -j %d identical %b (timing not reported: 1-core host)\n%!"
            jobs identical;
        if not identical then failwith "parallel grid diverged from serial";
        (jobs, tj, t1 /. tj))
      [ 2; 4 ]
  in
  (List.length baseline, t1, points, sweep_timed)

(* --smoke: the CI guard.  Replays the first [smoke_cells] golden cells
   serially and checks them against the recorded expectation
   (bit-identity of the fast scheduler), then asserts the loop-only
   allocation rate stays under the checked-in ceiling. *)

let smoke_cells = 10

let find_file candidates =
  try List.find Sys.file_exists candidates
  with Not_found ->
    failwith ("smoke: none of " ^ String.concat ", " candidates ^ " found")

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let smoke () =
  let expected =
    take smoke_cells
      (read_lines
         (find_file
            [ "test/golden_pipeline.expected"; "golden_pipeline.expected" ]))
  in
  let actual = List.map Golden.run_cell (take smoke_cells Golden.corpus) in
  List.iteri
    (fun i (e, a) ->
      if e <> a then (
        Printf.eprintf "smoke: cell %d diverged\n  expected %s\n  actual   %s\n"
          i e a;
        exit 1))
    (List.combine expected actual);
  Printf.printf "smoke: %d golden cells bit-identical\n%!" smoke_cells;
  let ceiling =
    float_of_string
      (String.trim
         (String.concat "\n"
            (read_lines
               (find_file
                  [ "bench/hotloop_ceiling.txt"; "hotloop_ceiling.txt" ]))))
  in
  let program = unr_workload () in
  let hl = bench_hotloop program in
  if hl.hl_minor_words_per_cycle > ceiling then (
    Printf.eprintf
      "smoke: allocation regression: %.1f minor words/cycle > ceiling %.1f\n"
      hl.hl_minor_words_per_cycle ceiling;
    exit 1);
  Printf.printf "smoke: %.1f minor words/cycle within ceiling %.1f\n%!"
    hl.hl_minor_words_per_cycle ceiling;
  (* The structural port/writeback model only runs on [Config.ports]
     configs; measure its loop so a per-issue regression in port binding
     or CDB arbitration is visible.  The allocation diet must hold there
     too: port binding is pure array scans, so the ported loop gets the
     same ceiling as the port-free one. *)
  let hp =
    bench_hotloop
      ~config:(Config.with_width 4 Config.p_core)
      ~label:"hotloop-ports" program
  in
  if hp.hl_minor_words_per_cycle > ceiling then (
    Printf.eprintf
      "smoke: ported-core allocation regression: %.1f minor words/cycle > \
       ceiling %.1f\n"
      hp.hl_minor_words_per_cycle ceiling;
    exit 1);
  Printf.printf
    "smoke: ported core (w4) %.1f minor words/cycle within ceiling %.1f \
     (throughput %.2fx of port-free loop)\n%!"
    hp.hl_minor_words_per_cycle ceiling
    (float_of_int hp.hl_cycles /. hp.hl_loop_wall
    /. (float_of_int hl.hl_cycles /. hl.hl_loop_wall));
  (* Detached telemetry must not tax the loop: the acceptance bound is
     2%, widened a little here against wall-clock noise on shared CI
     runners (best-of-3 already smooths most of it). *)
  let tele = bench_telemetry_detached program in
  if tele.to_ratio > 0.05 then (
    Printf.eprintf
      "smoke: detached telemetry costs %.1f%% of hotloop throughput\n"
      (tele.to_ratio *. 100.);
    exit 1);
  Printf.printf "smoke: detached telemetry overhead %+.1f%% within bound\n%!"
    (tele.to_ratio *. 100.);
  (* Scheduler + ledger gates on the same workload, instrumented once:
     event-driven skip-ahead must actually be skipping idle cycles (the
     source stat of protean_cycles_skipped_total), and an attached
     speculation-window ledger must observe the speculation this
     workload is known to have — a silently dead hook chain would zero
     the window metric families and the over-protection audit without
     failing any bit-identity check. *)
  let d = Defense.find "prot-track" in
  let t =
    Pipeline.create Config.p_core (d.Defense.make ()) program ~overlays:[]
  in
  let led = Spec_window.attach t in
  drive t;
  Spec_window.detach t led;
  let skipped = t.Protean_ooo.Pipeline_state.stats.Stats.skipped_cycles in
  let skip_ahead_on =
    match Sys.getenv_opt "PROTEAN_NO_SKIP_AHEAD" with
    | Some v when v <> "" && v <> "0" -> false
    | _ -> true
  in
  if skip_ahead_on && skipped <= 0 then (
    Printf.eprintf
      "smoke: protean_cycles_skipped_total source is 0: event-driven \
       skip-ahead is not engaging\n";
    exit 1);
  let wc = Spec_window.counters led in
  let wcount name =
    match List.assoc_opt name wc with Some n -> n | None -> 0
  in
  let opened = wcount "windows_opened" in
  let closed =
    wcount "windows_resolved" + wcount "windows_mispredicted"
    + wcount "windows_flushed" + wcount "windows_unclosed"
  in
  if opened <= 0 || closed <> opened then (
    Printf.eprintf
      "smoke: speculation-window ledger inconsistent: opened %d, closed \
       (resolved+mispredicted+flushed+unclosed) %d\n"
      opened closed;
    exit 1);
  Printf.printf
    "smoke: skip-ahead skipped %d cycles; ledger saw %d windows (%d \
     mispredicted, %d interventions)\n%!"
    skipped opened
    (wcount "windows_mispredicted")
    (wcount "interventions_leaky" + wcount "interventions_benign");
  (* Record the smoke measurements so CI archives them alongside the
     full bench's BENCH_pipeline.json. *)
  let oc = open_out "BENCH_pipeline.json" in
  Printf.fprintf oc "{\n  \"smoke\": true,\n";
  build_info_json oc;
  Printf.fprintf oc ",\n";
  Printf.fprintf oc "  \"hotloop\": {\n";
  Printf.fprintf oc "    \"cycles\": %d, \"loop_wall_s\": %.4f,\n" hl.hl_cycles
    hl.hl_loop_wall;
  Printf.fprintf oc "    \"minor_words_per_cycle\": %.1f,\n"
    hl.hl_minor_words_per_cycle;
  Printf.fprintf oc "    \"minor_words_ceiling\": %.1f\n  },\n" ceiling;
  Printf.fprintf oc "  \"hotloop_ports\": {\n";
  Printf.fprintf oc "    \"cycles\": %d, \"loop_wall_s\": %.4f,\n" hp.hl_cycles
    hp.hl_loop_wall;
  Printf.fprintf oc "    \"minor_words_per_cycle\": %.1f\n  },\n"
    hp.hl_minor_words_per_cycle;
  telemetry_json oc tele;
  Printf.fprintf oc ",\n  \"scheduler\": { \"cycles_skipped\": %d },\n" skipped;
  Printf.fprintf oc "  \"windows\": {%s}\n"
    (String.concat ", "
       (List.map (fun (name, n) -> Printf.sprintf "\"%s\": %d" name n) wc));
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "smoke: wrote BENCH_pipeline.json\n%!"

let () =
  (* Same runtime shape as the CLIs: the large nursery is part of the
     configuration whose throughput this benchmark records. *)
  Protean_ooo.Gc_tune.tune ();
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--smoke" then smoke ()
  else begin
    let out =
      if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_pipeline.json"
    in
    let program = unr_workload () in
    let cycles, committed, wall = bench_single program in
    let hl = bench_hotloop program in
    let hp =
      bench_hotloop
        ~config:(Config.with_width 4 Config.p_core)
        ~label:"hotloop-ports" program
    in
    let tele = bench_telemetry_detached program in
    let cells, t1, points, sweep_timed = bench_grid () in
    let oc = open_out out in
    let host_cores = Domain.recommended_domain_count () in
    (* The canonical supervised layout: workers × domains-per-worker,
       capped by the host.  total_lanes = host_cores means real
       parallelism; total_lanes > host_cores means the run exercises the
       machinery (determinism, crash recovery) without speedup. *)
    let shards = min 2 host_cores in
    let jobs_per_worker = max 1 (host_cores / shards) in
    Printf.fprintf oc "{\n";
    Printf.fprintf oc "  \"host_cores\": %d,\n" host_cores;
    build_info_json oc;
    Printf.fprintf oc ",\n";
    Printf.fprintf oc "  \"topology\": {\n";
    Printf.fprintf oc "    \"host_cores\": %d, \"default_jobs\": %d,\n" host_cores
      (Protean_harness.Parallel.default_jobs ());
    Printf.fprintf oc "    \"spawn_available\": %b,\n"
      (Protean_harness.Shard.can_spawn ());
    Printf.fprintf oc
      "    \"shards\": %d, \"jobs_per_worker\": %d, \"total_lanes\": %d,\n"
      shards jobs_per_worker (shards * jobs_per_worker);
    Printf.fprintf oc "    \"speedups_meaningful\": %b\n" (host_cores > 1);
    Printf.fprintf oc "  },\n";
    Printf.fprintf oc "  \"single\": {\n";
    Printf.fprintf oc
      "    \"bench\": \"ossl.bnexp\", \"pass\": \"unr\", \"defense\": \"prot-track\", \"core\": \"p\",\n";
    Printf.fprintf oc "    \"cycles\": %d, \"committed\": %d, \"wall_s\": %.3f,\n"
      cycles committed wall;
    Printf.fprintf oc "    \"cycles_per_sec\": %.0f\n"
      (float_of_int cycles /. wall);
    Printf.fprintf oc "  },\n";
    Printf.fprintf oc "  \"hotloop\": {\n";
    Printf.fprintf oc "    \"cycles\": %d, \"loop_wall_s\": %.4f,\n" hl.hl_cycles
      hl.hl_loop_wall;
    Printf.fprintf oc "    \"loop_cycles_per_sec\": %.0f,\n"
      (float_of_int hl.hl_cycles /. hl.hl_loop_wall);
    Printf.fprintf oc "    \"minor_words_per_cycle\": %.1f,\n"
      hl.hl_minor_words_per_cycle;
    Printf.fprintf oc "    \"profiler_overhead\": %.2f,\n"
      hl.hl_profiler_overhead;
    Printf.fprintf oc "    \"stages\": [\n";
    List.iteri
      (fun i (name, s, share) ->
        Printf.fprintf oc
          "      {\"stage\": \"%s\", \"seconds\": %.4f, \"share\": %.3f}%s\n"
          name s share
          (if i = List.length hl.hl_stages - 1 then "" else ","))
      hl.hl_stages;
    Printf.fprintf oc "    ]\n  },\n";
    Printf.fprintf oc "  \"hotloop_ports\": {\n";
    Printf.fprintf oc "    \"core\": \"p@w4\",\n";
    Printf.fprintf oc "    \"cycles\": %d, \"loop_wall_s\": %.4f,\n" hp.hl_cycles
      hp.hl_loop_wall;
    Printf.fprintf oc "    \"loop_cycles_per_sec\": %.0f,\n"
      (float_of_int hp.hl_cycles /. hp.hl_loop_wall);
    Printf.fprintf oc "    \"minor_words_per_cycle\": %.1f\n  },\n"
      hp.hl_minor_words_per_cycle;
    telemetry_json oc tele;
    Printf.fprintf oc ",\n";
    Printf.fprintf oc "  \"grid\": {\n";
    Printf.fprintf oc
      "    \"corpus\": \"golden\", \"cells\": %d, \"serial_wall_s\": %.3f,\n"
      cells t1;
    if sweep_timed then begin
      Printf.fprintf oc "    \"parallel\": [\n";
      List.iteri
        (fun i (jobs, tj, sp) ->
          Printf.fprintf oc
            "      {\"jobs\": %d, \"wall_s\": %.3f, \"speedup\": %.2f, \"identical\": true}%s\n"
            jobs tj sp
            (if i = List.length points - 1 then "" else ","))
        points;
      Printf.fprintf oc "    ]\n  }\n}\n"
    end
    else begin
      (* 1-core host: the sweep still ran for the determinism diff (all
         points identical or we'd have failed), but its timings are
         noise, not speedups — record that instead of fake numbers. *)
      Printf.fprintf oc "    \"parallel_identical\": [%s],\n"
        (String.concat ", "
           (List.map (fun (jobs, _, _) -> string_of_int jobs) points));
      Printf.fprintf oc
        "    \"jobs_sweep_timed\": false, \"jobs_sweep_note\": \"timings \
         not reported: host_cores=1\"\n  }\n}\n"
    end;
    close_out oc;
    Printf.printf "wrote %s\n%!" out
  end
